"""Execution engines: run a protocol phase to quiescence on either transport.

The seed exposed ``run_discovery`` / ``run_discovery_async`` method pairs on
:class:`~repro.core.system.P2PSystem`, each guarding against the wrong
transport.  The façade factors that split into one :class:`ExecutionEngine`
protocol with two implementations:

* :class:`SyncEngine` drives a :class:`~repro.network.transport.SyncTransport`
  (the deterministic discrete-event simulator) and reads the virtual clock,
* :class:`AsyncEngine` drives an
  :class:`~repro.network.transport.AsyncTransport`; its :meth:`AsyncEngine.run`
  wraps the coroutine in ``asyncio.run`` so callers without an event loop use
  the same blocking call signature.

Both expose ``run`` (blocking) and ``run_async`` (awaitable) with identical
semantics, so :meth:`repro.api.session.Session.run` works identically over
both transports; :func:`engine_for` picks the right engine for a transport.
The scaling layer adds five more implementations behind the same protocol,
selected the same way: :class:`repro.sharding.engine.ShardedEngine` (K
in-process shard workers), :class:`repro.sharding.multiproc.MultiprocEngine`
(one worker OS process per shard, respawned per run),
:class:`repro.sharding.pool.PooledEngine` (the same processes kept warm
across runs), and the cross-machine pair
:class:`repro.sharding.sockets.SocketEngine` /
:class:`repro.sharding.sockets.PooledSocketEngine` (shard workers on TCP
shard hosts, one-shot or kept warm).  ``docs/engines.md`` is the decision
guide.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Iterable, Protocol, runtime_checkable

from repro.coordination.rule import NodeId
from repro.errors import ReproError
from repro.network.transport import AsyncTransport, BaseTransport, SyncTransport
from repro.obs import tracer_of
from repro.stats.collector import StatsSnapshot

if TYPE_CHECKING:
    from repro.core.system import P2PSystem

#: The two protocol phases of the paper (Section 3).
PHASES = ("discovery", "update")


def start_phase(
    system: P2PSystem, phase: str, origins: Iterable[NodeId] | None
) -> list[NodeId]:
    """Kick off ``phase`` at its origin nodes and return the origins used.

    Discovery defaults to the super-peer initiating, as in the paper; the
    update defaults to every node (the super-peer's global update request).
    """
    if phase == "discovery":
        origin_list = list(origins) if origins is not None else [system.super_peer]
        for origin in origin_list:
            system.node(origin).discovery.start()
    elif phase == "update":
        origin_list = list(origins) if origins is not None else sorted(system.nodes)
        for origin in origin_list:
            system.node(origin).update.start()
    else:
        raise ReproError(f"unknown phase {phase!r}; expected one of {PHASES}")
    return origin_list


def finalize_phase(system: P2PSystem, phase: str) -> None:
    """Post-quiescence bookkeeping (discovery finalises every ``Paths`` relation)."""
    if phase == "discovery":
        for node in system.nodes.values():
            node.discovery.finalize_paths()


@runtime_checkable
class ExecutionEngine(Protocol):
    """Drives one protocol phase of a system to quiescence."""

    name: str

    def run(
        self, system: P2PSystem, phase: str, origins: Iterable[NodeId] | None = None
    ) -> tuple[float, StatsSnapshot]:
        """Blocking run; returns (simulated completion time, stats snapshot)."""
        ...

    async def run_async(
        self, system: P2PSystem, phase: str, origins: Iterable[NodeId] | None = None
    ) -> tuple[float, StatsSnapshot]:
        """Awaitable run with the same semantics as :meth:`run`."""
        ...


class SyncEngine:
    """Engine for the deterministic discrete-event transport."""

    name = "sync"

    def _check(self, system: P2PSystem) -> SyncTransport:
        transport = system.transport
        if not isinstance(transport, SyncTransport):
            raise ReproError(
                "the sync engine needs a SyncTransport; "
                "use AsyncEngine (or Session.run, which picks the engine) instead"
            )
        return transport

    def run(
        self, system: P2PSystem, phase: str, origins: Iterable[NodeId] | None = None
    ) -> tuple[float, StatsSnapshot]:
        transport = self._check(system)
        tracer = tracer_of(system)
        start_phase(system, phase, origins)
        with tracer.span("chase", engine=self.name) as span:
            completion = transport.run()
            span.set(delivered=transport.delivered_count)
        finalize_phase(system, phase)
        return completion, system.stats.snapshot()

    async def run_async(
        self, system: P2PSystem, phase: str, origins: Iterable[NodeId] | None = None
    ) -> tuple[float, StatsSnapshot]:
        return self.run(system, phase, origins)


class AsyncEngine:
    """Engine for the asyncio transport (every delivery an independent task)."""

    name = "async"

    def _check(self, system: P2PSystem) -> AsyncTransport:
        transport = system.transport
        if not isinstance(transport, AsyncTransport):
            raise ReproError(
                "the async engine needs an AsyncTransport; "
                "use SyncEngine (or Session.run, which picks the engine) instead"
            )
        return transport

    def run(
        self, system: P2PSystem, phase: str, origins: Iterable[NodeId] | None = None
    ) -> tuple[float, StatsSnapshot]:
        self._check(system)
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            pass
        else:
            raise ReproError(
                "the blocking run() was called from inside an event loop; "
                "use 'await session.run_async(...)' there"
            )
        return asyncio.run(self.run_async(system, phase, origins))

    async def run_async(
        self, system: P2PSystem, phase: str, origins: Iterable[NodeId] | None = None
    ) -> tuple[float, StatsSnapshot]:
        transport = self._check(system)
        tracer = tracer_of(system)
        start_phase(system, phase, origins)
        with tracer.span("chase", engine=self.name) as span:
            await transport.wait_quiescent()
            span.set(delivered=transport.delivered_count)
        finalize_phase(system, phase)
        snapshot = system.stats.snapshot()
        return snapshot.simulated_time, snapshot


def engine_for(transport: BaseTransport) -> ExecutionEngine:
    """The engine matching a transport instance."""
    # Imported lazily: repro.sharding imports this module for the phase
    # helpers, so a top-level import would be circular.
    from repro.sharding.engine import ShardedEngine
    from repro.sharding.multiproc import MultiprocEngine, MultiprocTransport
    from repro.sharding.pool import PooledEngine, PooledTransport
    from repro.sharding.sockets import (
        PooledSocketEngine,
        PooledSocketTransport,
        SocketEngine,
        SocketTransport,
    )
    from repro.sharding.transport import ShardedTransport

    if isinstance(transport, SyncTransport):
        return SyncEngine()
    if isinstance(transport, AsyncTransport):
        return AsyncEngine()
    if isinstance(transport, ShardedTransport):
        return ShardedEngine()
    # The transport hierarchy roots at MultiprocTransport, so the most
    # derived kinds must match first: pooled-socket < socket < multiproc,
    # and pooled < multiproc.
    if isinstance(transport, PooledSocketTransport):
        return PooledSocketEngine()
    if isinstance(transport, SocketTransport):
        return SocketEngine()
    if isinstance(transport, PooledTransport):
        return PooledEngine()
    if isinstance(transport, MultiprocTransport):
        return MultiprocEngine()
    raise ReproError(
        f"no execution engine for transport {type(transport).__name__!r}"
    )
