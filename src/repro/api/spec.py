"""Declarative scenarios and a fluent network builder.

A :class:`ScenarioSpec` is everything a run needs in one object — schemas,
rules, initial data, transport, propagation policy, latency, super-peer and a
default update strategy — so experiments reduce to *spec + run + report* and
can be stored, varied and replayed.  :class:`NetworkBuilder` constructs a spec
(or directly a session) fluently::

    session = (
        NetworkBuilder("demo")
        .node("a", RelationSchema("item", ["x", "y"]))
        .node("b", RelationSchema("item", ["x", "y"]))
        .rule("ab: b: item(X, Y) -> a: item(X, Y)")
        .data("b", "item", [("1", "2")])
        .super_peer("a")
        .session()
    )

:meth:`ScenarioSpec.from_topology` packages the paper's DBLP workload (a
topology plus generated schemas, rules and records) as a spec, which is what
the Section 5 experiments run on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.coordination.rule import CoordinationRule, NodeId, rule_from_text
from repro.database.relation import Row
from repro.database.schema import Attribute, DatabaseSchema, RelationSchema
from repro.errors import ReproError
from repro.network.latency import ConstantLatency, LatencyModel, UniformLatency
from repro.network.transport import BaseTransport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.api.session import Session
    from repro.core.system import P2PSystem
    from repro.faults.plan import FaultPlan
    from repro.workloads.topologies import TopologySpec

#: Format tag written into dumped scenario files.
_SPEC_FORMAT = "repro-scenario/1"


#: What :meth:`ScenarioSpec.of` accepts per node before schema coercion.
SchemaInput = DatabaseSchema | RelationSchema | Iterable[RelationSchema]


def _transport_label(transport: str | BaseTransport) -> str:
    """How error messages name the spec's transport setting."""
    if isinstance(transport, str):
        return transport
    return repr(type(transport).__name__)


def _coerce_schema(schema: SchemaInput) -> DatabaseSchema:
    if isinstance(schema, DatabaseSchema):
        return schema
    if isinstance(schema, RelationSchema):
        return DatabaseSchema([schema])
    return DatabaseSchema(schema)


def _dump_latency(latency: LatencyModel | None) -> dict | None:
    if latency is None:
        return None
    if isinstance(latency, ConstantLatency):
        return {"kind": "constant", "delay": latency.delay}
    if isinstance(latency, UniformLatency):
        return {
            "kind": "uniform",
            "low": latency.low,
            "high": latency.high,
            "seed": latency.seed,
        }
    raise ReproError(
        f"cannot serialise latency model {type(latency).__name__}; "
        "only ConstantLatency/UniformLatency (or None) dump to JSON"
    )


def _load_latency(document: dict | None) -> LatencyModel | None:
    if document is None:
        return None
    kind = document.get("kind")
    if kind == "constant":
        return ConstantLatency(document["delay"])
    if kind == "uniform":
        return UniformLatency(
            document["low"], document["high"], document.get("seed", 0)
        )
    raise ReproError(f"unknown latency kind {kind!r} in scenario JSON")


def _load_faults(document: Mapping | None) -> "FaultPlan | None":
    if document is None:
        return None
    from repro.faults.plan import FaultPlan

    return FaultPlan.from_json_dict(document)


def _coerce_rule(rule: CoordinationRule | str) -> CoordinationRule:
    if isinstance(rule, CoordinationRule):
        return rule
    rule_id, separator, remainder = rule.partition(":")
    if not separator or not remainder.strip():
        raise ReproError(
            f"cannot parse rule {rule!r}; expected 'rule_id: body -> target: head'"
        )
    return rule_from_text(rule_id.strip(), remainder.strip())


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, replayable description of one network scenario."""

    schemas: Mapping[NodeId, DatabaseSchema]
    rules: tuple[CoordinationRule, ...] = ()
    data: Mapping[NodeId, Mapping[str, tuple[Row, ...]]] = field(default_factory=dict)
    transport: str | BaseTransport = "sync"
    propagation: str = "once"
    latency: LatencyModel | None = None
    super_peer: NodeId | None = None
    strategy: str = "distributed"
    max_messages: int = 1_000_000
    name: str = "scenario"
    #: Shard count for the partitioned transports (``"sharded"`` runs the
    #: shards as asyncio tasks in-process, ``"multiproc"`` as one OS process
    #: each).  Setting it on a spec whose transport is the default ``"sync"``
    #: selects ``"sharded"`` implicitly, so ``spec.with_(shards=4)`` is the
    #: whole knob; pair it with ``transport="multiproc"`` for real processes.
    shards: int | None = None
    #: With ``transport="multiproc"``, keep the shard worker processes alive
    #: between runs (the persistent :class:`~repro.sharding.pool.WorkerPool`:
    #: spawn once, ship the worlds once, re-ship only deltas).  Equivalent to
    #: ``transport="pooled"``; with ``transport="socket"`` it selects the warm
    #: socket pool the same way; ignored by the other transports.
    pool: bool = False
    #: ``"HOST:PORT"`` shard-host addresses for ``transport="socket"`` —
    #: every entry a running ``python -m repro.shardhost`` server; shards are
    #: assigned round-robin across them and ``shards`` defaults to one per
    #: host.  ``None`` auto-spawns localhost hosts on the first run (owned by
    #: the session's engine; ``session.close()`` stops them), so specs stay
    #: replayable with no real cluster at hand.
    hosts: tuple[str, ...] | None = None
    #: Trace runs of this scenario: sessions opened on the spec create a
    #: :class:`~repro.obs.Tracer`, wrap each run in spans and attach the
    #: merged timeline to ``RunResult.extras["trace"]`` (see
    #: ``docs/observability.md``).  Off by default — untraced runs stay
    #: bit-identical.
    trace: bool = False
    #: Seeded fault plan for chaos runs: sessions opened on the spec attach a
    #: :class:`~repro.faults.injector.FaultInjector` to the system, and the
    #: process-backed engines fire the plan's worker kills, frame faults and
    #: host partitions at their phase hook points (see ``docs/faults.md``).
    #: ``None`` (the default) injects nothing and costs nothing.
    faults: "FaultPlan | None" = None

    @classmethod
    def of(
        cls,
        schemas: Mapping[NodeId, SchemaInput],
        rules: Iterable[CoordinationRule | str] = (),
        data: Mapping[NodeId, Mapping[str, Iterable[Row]]] | None = None,
        **settings: object,
    ) -> "ScenarioSpec":
        """Build a spec from loosely-typed parts (schema lists, rule strings)."""
        return cls(
            schemas={node: _coerce_schema(schema) for node, schema in schemas.items()},
            rules=tuple(_coerce_rule(rule) for rule in rules),
            data={
                node: {relation: tuple(rows) for relation, rows in relations.items()}
                for node, relations in (data or {}).items()
            },
            **settings,
        )

    @classmethod
    def from_topology(
        cls,
        topology: TopologySpec,
        *,
        records_per_node: int = 100,
        overlap_probability: float = 0.0,
        overlap_fraction: float = 0.5,
        seed: int = 0,
        **settings: object,
    ) -> "ScenarioSpec":
        """The paper's DBLP sharing workload over a topology, as a spec."""
        from repro.workloads.scenarios import dblp_workload_parts

        rules, _assignment, schemas, data = dblp_workload_parts(
            topology,
            records_per_node=records_per_node,
            overlap_probability=overlap_probability,
            overlap_fraction=overlap_fraction,
            seed=seed,
        )
        settings.setdefault("super_peer", topology.nodes[0])
        settings.setdefault("name", f"{topology.name}/n={topology.node_count}")
        settings.setdefault("max_messages", 2_000_000)  # build_dblp_network's bound
        return cls(
            schemas=schemas,
            rules=tuple(rules),
            data={
                node: {relation: tuple(rows) for relation, rows in relations.items()}
                for node, relations in data.items()
            },
            **settings,
        )

    def with_(self, **changes: object) -> "ScenarioSpec":
        """A copy of the spec with some settings replaced."""
        return replace(self, **changes)

    # -------------------------------------------------------------- (de)serialisation

    def dump_json(self, path: str | Path | None = None, *, indent: int = 2) -> str:
        """Serialise the spec to JSON (and write it to ``path`` when given).

        The result round-trips through :meth:`load_json`, so sweep
        configurations can live as checked-in spec files.  Only replayable
        specs serialise: the transport must be a kind string (not a live
        instance) and the latency model constant, uniform or absent.
        """
        if isinstance(self.transport, BaseTransport):
            raise ReproError(
                "cannot dump a spec holding a transport instance; use "
                "transport='sync'/'async'/'sharded'/'multiproc'/'pooled'/'socket'"
            )
        document = {
            "format": _SPEC_FORMAT,
            "name": self.name,
            "transport": self.transport,
            "propagation": self.propagation,
            "latency": _dump_latency(self.latency),
            "super_peer": self.super_peer,
            "strategy": self.strategy,
            "max_messages": self.max_messages,
            "shards": self.shards,
            "pool": self.pool,
            "hosts": list(self.hosts) if self.hosts else None,
            "trace": self.trace,
            "faults": self.faults.to_json_dict() if self.faults else None,
            "schemas": {
                node: [
                    {
                        "name": relation.name,
                        "attributes": [
                            {"name": attr.name, "dtype": attr.dtype}
                            for attr in relation.attributes
                        ],
                    }
                    for relation in schema
                ]
                for node, schema in self.schemas.items()
            },
            "rules": [str(rule) for rule in self.rules],
            "data": {
                node: {
                    relation: [list(row) for row in sorted(rows, key=repr)]
                    for relation, rows in relations.items()
                }
                for node, relations in self.data.items()
            },
        }
        text = json.dumps(document, indent=indent)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    @classmethod
    def load_json(cls, source: str | Path) -> "ScenarioSpec":
        """Rebuild a spec dumped by :meth:`dump_json`.

        ``source`` is a path to a spec file, or the JSON text itself (any
        string whose first non-blank character is ``{``).
        """
        if isinstance(source, Path):
            text = source.read_text(encoding="utf-8")
        elif source.lstrip().startswith("{"):
            text = source
        else:
            text = Path(source).read_text(encoding="utf-8")
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReproError(f"invalid scenario JSON: {error}") from None
        if document.get("format") != _SPEC_FORMAT:
            raise ReproError(
                f"unsupported scenario format {document.get('format')!r}; "
                f"expected {_SPEC_FORMAT!r}"
            )
        schemas = {
            node: DatabaseSchema(
                RelationSchema(
                    relation["name"],
                    [
                        Attribute(attr["name"], attr.get("dtype", "str"))
                        for attr in relation["attributes"]
                    ],
                )
                for relation in relations
            )
            for node, relations in document["schemas"].items()
        }
        return cls(
            schemas=schemas,
            rules=tuple(_coerce_rule(rule) for rule in document.get("rules", ())),
            data={
                node: {
                    relation: tuple(tuple(row) for row in rows)
                    for relation, rows in relations.items()
                }
                for node, relations in document.get("data", {}).items()
            },
            transport=document.get("transport", "sync"),
            propagation=document.get("propagation", "once"),
            latency=_load_latency(document.get("latency")),
            super_peer=document.get("super_peer"),
            strategy=document.get("strategy", "distributed"),
            max_messages=document.get("max_messages", 1_000_000),
            name=document.get("name", "scenario"),
            shards=document.get("shards"),
            pool=document.get("pool", False),
            hosts=tuple(document["hosts"]) if document.get("hosts") else None,
            trace=document.get("trace", False),
            faults=_load_faults(document.get("faults")),
        )

    @property
    def node_count(self) -> int:
        """Number of peers the spec declares."""
        return len(self.schemas)

    @property
    def total_rows(self) -> int:
        """Total number of initial rows across all nodes and relations."""
        return sum(
            len(rows)
            for relations in self.data.values()
            for rows in relations.values()
        )

    def build_system(self) -> P2PSystem:
        """Assemble the spec into a fresh :class:`~repro.core.system.P2PSystem`.

        A spec is replayable — each call builds an independent system — except
        when it holds a *transport instance*, which can only back one system
        (its peer registry and statistics are per-system state); in that case
        a second build raises :class:`ReproError`.  Pass ``"sync"`` /
        ``"async"`` to keep the spec fully replayable.
        """
        from repro.core.system import P2PSystem

        if isinstance(self.transport, BaseTransport) and self.transport.peers:
            raise ReproError(
                "this spec holds a transport instance that already backs a "
                "system; use transport='sync'/'async' for a replayable spec"
            )
        transport = self.transport
        if self.shards is not None:
            if transport == "sync":
                transport = "sharded"
            elif transport not in ("sharded", "multiproc", "pooled", "socket"):
                raise ReproError(
                    f"shards={self.shards} needs a partitioned transport, but "
                    f"the spec selects {_transport_label(transport)}; "
                    "drop the shards setting or use "
                    "transport='sharded'/'multiproc'/'pooled'/'socket'"
                )
        if self.pool and transport not in ("multiproc", "pooled", "socket"):
            from repro.sharding.multiproc import MultiprocTransport

            # A live MultiprocTransport (or a pooled/socket subclass) instance
            # already satisfies the flag; everything else cannot pool.
            if not isinstance(transport, MultiprocTransport):
                raise ReproError(
                    f"pool=True needs the multiproc or socket transport, but "
                    f"the spec selects {_transport_label(transport)}; "
                    "use transport='multiproc'/'pooled'/'socket' with the pool flag"
                )
        if self.hosts and transport != "socket":
            # A transport *instance* carries its own hosts; spec-level hosts
            # only make sense when the spec builds the transport itself.
            raise ReproError(
                f"hosts= needs transport='socket', but the spec selects "
                f"{_transport_label(transport)}"
            )
        if self.faults is not None:
            if transport not in ("multiproc", "pooled", "socket"):
                raise ReproError(
                    "faults= needs a process-backed transport "
                    "('multiproc'/'pooled'/'socket'), but the spec selects "
                    f"{_transport_label(transport)}; the in-process transports "
                    "have no workers to kill or frames to drop"
                )
            if transport != "socket" and any(
                fault.kind == "partition" for fault in self.faults.faults
            ):
                raise ReproError(
                    "partition faults need transport='socket' (partitions cut "
                    "coordinator-to-host links), but the spec selects "
                    f"{_transport_label(transport)}"
                )
        return P2PSystem.build(
            self.schemas,
            self.rules,
            self.data or None,
            transport=transport,
            propagation=self.propagation,
            latency=self.latency,
            super_peer=self.super_peer,
            max_messages=self.max_messages,
            shards=self.shards,
            pool=self.pool,
            hosts=self.hosts,
        )


class NetworkBuilder:
    """Fluent construction of a :class:`ScenarioSpec` (and of sessions)."""

    def __init__(self, name: str = "network"):
        self._name = name
        self._schemas: dict[NodeId, DatabaseSchema] = {}
        self._rules: list[CoordinationRule] = []
        self._data: dict[NodeId, dict[str, list[Row]]] = {}
        self._settings: dict[str, object] = {}

    def node(
        self,
        node_id: NodeId,
        *relations: RelationSchema | DatabaseSchema,
    ) -> "NetworkBuilder":
        """Declare a peer and its shared relations."""
        if node_id in self._schemas:
            raise ReproError(f"node {node_id!r} is already declared")
        if len(relations) == 1 and isinstance(relations[0], DatabaseSchema):
            schema = relations[0]
        else:
            schema = DatabaseSchema(relations)
        self._schemas[node_id] = schema
        return self

    def rule(self, rule: CoordinationRule | str) -> "NetworkBuilder":
        """Add a coordination rule (an object or ``'id: body -> target'`` text)."""
        self._rules.append(_coerce_rule(rule))
        return self

    def rules(self, rules: Iterable[CoordinationRule | str]) -> "NetworkBuilder":
        """Add several coordination rules at once."""
        for rule in rules:
            self.rule(rule)
        return self

    def data(
        self, node_id: NodeId, relation: str, rows: Iterable[Row]
    ) -> "NetworkBuilder":
        """Load initial rows into one relation of one peer."""
        self._data.setdefault(node_id, {}).setdefault(relation, []).extend(rows)
        return self

    def transport(self, kind: str | BaseTransport) -> "NetworkBuilder":
        """Select the transport: ``"sync"``, ``"async"``, ``"sharded"``,
        ``"multiproc"``, ``"pooled"``, ``"socket"`` or an instance."""
        self._settings["transport"] = kind
        return self

    def shards(self, count: int) -> "NetworkBuilder":
        """Run over a partitioned transport with ``count`` shards.

        Defaults to the in-process ``"sharded"`` transport; combine with
        ``.transport("multiproc")`` for one worker process per shard, or
        call :meth:`pooled` to keep those processes warm between runs.
        """
        self._settings["shards"] = count
        return self

    def pooled(self, shards: int | None = None) -> "NetworkBuilder":
        """Run over the persistent multi-process worker pool.

        One worker OS process per shard, spawned on the session's first run
        and kept warm for every later one (only data/rule deltas are
        re-shipped).  ``shards`` optionally sets the shard count in the same
        call; close the session (``session.close()`` or a ``with`` block) to
        stop the workers.
        """
        self._settings["transport"] = "pooled"
        if shards is not None:
            self._settings["shards"] = shards
        return self

    def socketed(
        self,
        hosts: Iterable[str] | None = None,
        *,
        shards: int | None = None,
        pooled: bool = False,
    ) -> "NetworkBuilder":
        """Run over TCP shard hosts (``python -m repro.shardhost`` servers).

        ``hosts`` lists their ``"HOST:PORT"`` addresses — shards are assigned
        round-robin across them, and the shard count defaults to one per
        host; ``None`` auto-spawns localhost hosts on the first run (closed
        with the session).  ``pooled=True`` keeps the host connections and
        workers warm between runs, re-shipping only structural deltas, like
        :meth:`pooled` does for the in-box worker pool.
        """
        self._settings["transport"] = "socket"
        if hosts is not None:
            self._settings["hosts"] = tuple(hosts)
        if shards is not None:
            self._settings["shards"] = shards
        if pooled:
            self._settings["pool"] = True
        return self

    def propagation(self, policy: str) -> "NetworkBuilder":
        """Select the query propagation policy of every node."""
        self._settings["propagation"] = policy
        return self

    def latency(self, model: LatencyModel) -> "NetworkBuilder":
        """Select the latency model of the transport."""
        self._settings["latency"] = model
        return self

    def super_peer(self, node_id: NodeId) -> "NetworkBuilder":
        """Designate the super-peer."""
        self._settings["super_peer"] = node_id
        return self

    def strategy(self, name: str) -> "NetworkBuilder":
        """Select the default update strategy of sessions built from the spec."""
        self._settings["strategy"] = name
        return self

    def max_messages(self, count: int) -> "NetworkBuilder":
        """Bound the number of deliveries before a run is declared divergent."""
        self._settings["max_messages"] = count
        return self

    def build(self) -> ScenarioSpec:
        """Freeze the builder into a :class:`ScenarioSpec`."""
        if not self._schemas:
            raise ReproError("a network needs at least one node")
        return ScenarioSpec(
            schemas=dict(self._schemas),
            rules=tuple(self._rules),
            data={
                node: {relation: tuple(rows) for relation, rows in relations.items()}
                for node, relations in self._data.items()
            },
            name=self._name,
            **self._settings,
        )

    def session(self) -> "Session":
        """Build the spec and open a :class:`~repro.api.session.Session` on it."""
        from repro.api.session import Session

        return Session.from_spec(self.build())
