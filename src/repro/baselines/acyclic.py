"""Single-pass propagation for acyclic networks, à la Halevy et al. 2003.

The related work the paper cites handles "acyclic P2P systems using classical
(first-order logic) semantics": because the dependency graph has no cycles, a
query (or an update) can simply be propagated "until it reaches the leaves of
the network" — one pass in reverse topological order of the dependency graph
suffices.

This baseline applies every rule exactly once, ordering targets so that a
node's sources are fully updated before the node itself imports from them.
On an acyclic network the result coincides with the centralized fix-point; on
a cyclic network the function refuses to run (that is precisely the
limitation the paper's algorithm removes), unless ``force=True`` is passed,
in which case the single pass is performed anyway so experiments can show how
much data a cycle-oblivious algorithm misses.
"""

from __future__ import annotations

from typing import Iterable

from repro.baselines.centralized import (
    CentralizedResult,
    DataSpec,
    SchemaSpec,
    _build_databases,
)
from repro.coordination.depgraph import DependencyGraph
from repro.coordination.rule import CoordinationRule, NodeId
from repro.core.update import fragment_for, join_fragments
from repro.errors import ReproError


def _topological_order(graph: DependencyGraph) -> list[NodeId]:
    """Nodes ordered so that every node appears after the nodes it depends on."""
    order: list[NodeId] = []
    state: dict[NodeId, int] = {}
    WHITE, GREY, BLACK = 0, 1, 2

    def visit(node: NodeId) -> None:
        state[node] = GREY
        for successor in sorted(graph.successors(node)):
            colour = state.get(successor, WHITE)
            if colour == WHITE:
                visit(successor)
        state[node] = BLACK
        order.append(node)

    for node in sorted(graph.nodes):
        if state.get(node, WHITE) == WHITE:
            visit(node)
    return order


def acyclic_update(
    schemas: SchemaSpec,
    rules: Iterable[CoordinationRule],
    data: DataSpec | None = None,
    *,
    force: bool = False,
) -> CentralizedResult:
    """One propagation pass in dependency order (complete only without cycles).

    Raises :class:`ReproError` when the dependency graph is cyclic and
    ``force`` is False.
    """
    rules = list(rules)
    graph = DependencyGraph.from_rules(rules, nodes=schemas.keys())
    if not graph.is_acyclic() and not force:
        raise ReproError(
            "the dependency graph has cycles; the acyclic baseline is not applicable"
        )

    databases = _build_databases(schemas, data)
    order = _topological_order(graph)
    position = {node: index for index, node in enumerate(order)}

    # Apply rules grouped by target, targets ordered so sources come first.
    ordered_rules = sorted(
        rules, key=lambda rule: (position.get(rule.target, 0), rule.rule_id)
    )
    rule_applications = 0
    tuples_inserted = 0
    for rule in ordered_rules:
        rule_applications += 1
        fragments = {
            source: fragment_for(databases[source], rule, source)
            for source in rule.sources
            if source in databases
        }
        if len(fragments) != len(rule.sources):
            continue
        answers = join_fragments(rule, fragments)
        inserted = databases[rule.target].apply_view_tuples(
            rule.rule_id, rule.head, rule.distinguished_variables, answers
        )
        tuples_inserted += len(inserted)

    return CentralizedResult(
        databases=databases,
        rounds=1,
        rule_applications=rule_applications,
        tuples_inserted=tuples_inserted,
    )
