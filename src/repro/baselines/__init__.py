"""Baseline algorithms the paper positions itself against.

* :mod:`repro.baselines.centralized` — the *global* algorithm in the style of
  [Calvanese et al., 2003]: a central site with access to every local database
  computes the update fix-point without message exchange.  It also serves as
  the reference semantics the distributed algorithm is tested against.
* :mod:`repro.baselines.acyclic` — propagation restricted to acyclic networks
  in the style of [Halevy et al., 2003]: rules are applied once in reverse
  topological order of the dependency graph, which is complete only when the
  network has no cycles.
* :mod:`repro.baselines.querytime` — answering a query *at query time* by
  recursively fetching data from acquaintances, without materialising
  anything.  The introduction motivates the update problem precisely as the
  alternative to this: after materialisation, queries are answered locally.
"""

from repro.baselines.centralized import CentralizedResult, centralized_update
from repro.baselines.acyclic import acyclic_update
from repro.baselines.querytime import QueryTimeResult, query_time_answer

__all__ = [
    "CentralizedResult",
    "centralized_update",
    "acyclic_update",
    "QueryTimeResult",
    "query_time_answer",
]
