"""The global (centralized) update algorithm, à la Calvanese et al. 2003.

The related work the paper cites "describes only a global algorithm, that
assumes a central node where all computation is performed".  This module
implements that algorithm over the same relational substrate and the same
chase step as the distributed engine:

* every node's database is available locally (no messages),
* rules are applied repeatedly — each application evaluates the rule body by
  joining the per-source fragments and materialises the head — until a full
  round adds no tuple anywhere.

Because it shares :func:`repro.core.update.fragment_for`,
:func:`repro.core.update.join_fragments` and
:meth:`repro.database.database.LocalDatabase.apply_view_tuples` with the
distributed engine, its fix-point is the reference result the distributed
algorithm must reproduce (soundness and completeness, Lemma 1), and the tests
use it exactly that way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.coordination.rule import CoordinationRule, NodeId
from repro.core.update import fragment_for, join_fragments
from repro.database.database import LocalDatabase
from repro.database.relation import Row
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.errors import TerminationError

SchemaSpec = Mapping[NodeId, DatabaseSchema | Iterable[RelationSchema]]
DataSpec = Mapping[NodeId, Mapping[str, Iterable[Row]]]
Snapshot = dict[NodeId, dict[str, frozenset[Row]]]


@dataclass(frozen=True)
class CentralizedResult:
    """Outcome of a centralized update run."""

    databases: dict[NodeId, LocalDatabase]
    rounds: int
    rule_applications: int
    tuples_inserted: int

    def snapshot(self) -> Snapshot:
        """Relation contents per node, comparable with ``P2PSystem.databases()``."""
        return {node_id: db.facts() for node_id, db in self.databases.items()}


def _build_databases(
    schemas: SchemaSpec, data: DataSpec | None
) -> dict[NodeId, LocalDatabase]:
    databases: dict[NodeId, LocalDatabase] = {}
    for node_id, schema in schemas.items():
        if not isinstance(schema, DatabaseSchema):
            schema = DatabaseSchema(schema)
        databases[node_id] = LocalDatabase(schema)
    if data:
        for node_id, relations in data.items():
            for relation_name, rows in relations.items():
                databases[node_id].insert_many(relation_name, rows)
    return databases


def centralized_update(
    schemas: SchemaSpec,
    rules: Iterable[CoordinationRule],
    data: DataSpec | None = None,
    *,
    max_rounds: int = 10_000,
) -> CentralizedResult:
    """Compute the update fix-point with full global knowledge.

    Applies every rule in a round-robin fashion until one complete round
    changes nothing.  ``max_rounds`` bounds pathological rule sets (the chase
    over cyclic existential rules need not terminate in general); exceeding it
    raises :class:`TerminationError`.
    """
    rules = list(rules)
    databases = _build_databases(schemas, data)

    rounds = 0
    rule_applications = 0
    tuples_inserted = 0
    changed = True
    while changed:
        if rounds >= max_rounds:
            raise TerminationError(
                f"centralized update did not reach a fix-point in {max_rounds} rounds"
            )
        rounds += 1
        changed = False
        for rule in rules:
            rule_applications += 1
            fragments = {
                source: fragment_for(databases[source], rule, source)
                for source in rule.sources
                if source in databases
            }
            if len(fragments) != len(rule.sources):
                continue
            answers = join_fragments(rule, fragments)
            inserted = databases[rule.target].apply_view_tuples(
                rule.rule_id, rule.head, rule.distinguished_variables, answers
            )
            if inserted:
                changed = True
                tuples_inserted += len(inserted)
    return CentralizedResult(
        databases=databases,
        rounds=rounds,
        rule_applications=rule_applications,
        tuples_inserted=tuples_inserted,
    )
