"""Query-time answering without materialisation.

The introduction of the paper contrasts the *update* problem with the *query
answering* problem: without materialisation, "the answer to a local query may
involve data that is distributed in the network, thus requiring the
participation of all nodes at query time".  This baseline models that cost so
experiment E9 can compare it with the post-update local answering:

* the dependency closure of the queried node is computed,
* data is fetched along coordination rules, round after round, until the
  closure reaches its fix-point — every (rule, source) fetch in a round counts
  one query message and one answer message, which is what a non-materialising
  system pays *per user query*,
* the user query is finally evaluated on the queried node's accumulated data.

The data the baseline computes for the queried node is identical to the
distributed update's result (both are the same fix-point restricted to the
node's dependency closure); what differs — and what the benchmark reports —
is *when* the messages are paid: once, at update time, versus on every query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.baselines.centralized import DataSpec, SchemaSpec, _build_databases
from repro.coordination.depgraph import DependencyGraph
from repro.coordination.rule import CoordinationRule, NodeId
from repro.core.update import fragment_for, join_fragments
from repro.database.query import ConjunctiveQuery
from repro.errors import TerminationError


@dataclass(frozen=True)
class QueryTimeResult:
    """Outcome of answering one query at query time."""

    answers: frozenset[tuple]
    messages: int
    rounds: int
    nodes_contacted: int


@dataclass(frozen=True)
class ClosureFetch:
    """The accumulated state after fetching one node's dependency closure."""

    databases: dict[NodeId, "LocalDatabase"]
    messages: int
    rounds: int
    closure: frozenset[NodeId]


def fetch_closure(
    schemas: SchemaSpec,
    rules: Iterable[CoordinationRule],
    data: DataSpec | None,
    node_id: NodeId,
    *,
    max_rounds: int = 10_000,
) -> ClosureFetch:
    """Fetch ``node_id``'s dependency closure round by round until its fix-point.

    This is the message-paying part of query-time answering, factored out so
    the strategy façade can report the accumulated databases; every
    (rule, source) fetch in a round costs one query and one answer message.
    """
    rules = list(rules)
    graph = DependencyGraph.from_rules(rules, nodes=schemas.keys())
    closure = graph.reachable_from(node_id)
    relevant_rules = [
        rule
        for rule in rules
        if rule.target in closure and all(source in closure for source in rule.sources)
    ]

    databases = _build_databases(schemas, data)
    messages = 0
    rounds = 0
    changed = True
    while changed:
        if rounds >= max_rounds:
            raise TerminationError(
                f"query-time fetching did not converge in {max_rounds} rounds"
            )
        rounds += 1
        changed = False
        for rule in relevant_rules:
            fragments = {}
            for source in rule.sources:
                if source not in databases:
                    continue
                # One query message to the source and one answer back.
                messages += 2
                fragments[source] = fragment_for(databases[source], rule, source)
            if len(fragments) != len(rule.sources):
                continue
            answers = join_fragments(rule, fragments)
            inserted = databases[rule.target].apply_view_tuples(
                rule.rule_id, rule.head, rule.distinguished_variables, answers
            )
            if inserted:
                changed = True

    return ClosureFetch(
        databases=databases,
        messages=messages,
        rounds=rounds,
        closure=frozenset(closure),
    )


def query_time_answer(
    schemas: SchemaSpec,
    rules: Iterable[CoordinationRule],
    data: DataSpec | None,
    node_id: NodeId,
    query: ConjunctiveQuery,
    *,
    max_rounds: int = 10_000,
) -> QueryTimeResult:
    """Answer ``query`` at ``node_id`` by fetching remote data at query time."""
    fetch = fetch_closure(schemas, rules, data, node_id, max_rounds=max_rounds)
    final_answers = frozenset(fetch.databases[node_id].query(query))
    return QueryTimeResult(
        answers=final_answers,
        messages=fetch.messages,
        rounds=fetch.rounds,
        nodes_contacted=len(fetch.closure) - 1,
    )
