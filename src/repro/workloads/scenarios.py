"""Packaged scenarios: the paper's running example and DBLP sharing networks.

Two scenario families are provided:

* the 5-node example of Section 2 (nodes A–E, rules r1–r7), used by the
  dependency-path experiment (E1), the execution-trace experiment (E2) and a
  large part of the test-suite,
* parametric DBLP sharing networks (:func:`build_dblp_network`) combining a
  topology, the three schema variants, a data distribution and a ready
  :class:`~repro.core.system.P2PSystem` — the configuration of the paper's
  scalability experiments (E3–E6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coordination.rule import CoordinationRule, NodeId, rule_from_text
from repro.core.system import P2PSystem
from repro.database.relation import Row
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.network.latency import LatencyModel
from repro.workloads.dblp import PublicationRecord, rows_for_variant, schema_for_variant
from repro.workloads.distributions import distribute_records
from repro.workloads.topologies import TopologySpec, coordination_rules_for


# ----------------------------------------------------------- the paper example


def paper_example_schemas() -> dict[NodeId, DatabaseSchema]:
    """Schemas of the Section 2 example: A:a/2, B:b/2, C:c/2+f/1, D:d/2, E:e/2."""
    return {
        "A": DatabaseSchema([RelationSchema("a", ["x", "y"])]),
        "B": DatabaseSchema([RelationSchema("b", ["x", "y"])]),
        "C": DatabaseSchema(
            [RelationSchema("c", ["x", "y"]), RelationSchema("f", ["x"])]
        ),
        "D": DatabaseSchema([RelationSchema("d", ["x", "y"])]),
        "E": DatabaseSchema([RelationSchema("e", ["x", "y"])]),
    }


def paper_example_rules() -> list[CoordinationRule]:
    """The seven coordination rules r1–r7 of the Section 2 example.

    The technical report's listing of r2 and r7 contains obvious typos
    (``b(Y), Z`` for ``b(Y, Z)`` and upper-case relation names); the corrected
    reading used here matches the dependency edges and paths the paper derives
    from the rules.
    """
    return [
        rule_from_text("r1", "E: e(X, Y) -> B: b(X, Y)"),
        rule_from_text("r2", "B: b(X, Y), b(Y, Z) -> C: c(X, Z)"),
        rule_from_text("r3", "C: c(X, Y), c(Y, Z) -> B: b(X, Z)"),
        rule_from_text("r4", "B: b(X, Y), b(X, Z), X != Z -> A: a(X, Y)"),
        rule_from_text("r5", "A: a(X, Y) -> C: f(X)"),
        rule_from_text("r6", "A: a(X, Y) -> D: d(Y, X)"),
        rule_from_text("r7", "D: d(X, Y), d(Y, Z) -> C: c(X, Y)"),
    ]


def paper_example_data() -> dict[NodeId, dict[str, list[Row]]]:
    """Small initial data making every rule of the example fire at least once."""
    return {
        "A": {"a": [("a1", "a2")]},
        "B": {"b": [("m", "n"), ("n", "p"), ("m", "q")]},
        "C": {"c": [("u", "v"), ("v", "w")], "f": []},
        "D": {"d": [("k1", "k2"), ("k2", "k3")]},
        "E": {"e": [("s", "t"), ("t", "z")]},
    }


def build_paper_example(
    *,
    transport: str = "sync",
    propagation: str = "per_path",
    with_data: bool = True,
    latency: LatencyModel | None = None,
) -> P2PSystem:
    """Build the Section 2 example as a ready-to-run system.

    The faithful ``per_path`` propagation policy is the default here because
    the example is small and the execution-trace experiment (Figure 1) wants
    the duplicate queries the paper's statistics module counts.
    """
    return P2PSystem.build(
        paper_example_schemas(),
        paper_example_rules(),
        paper_example_data() if with_data else None,
        transport=transport,
        propagation=propagation,
        latency=latency,
        super_peer="A",
    )


# -------------------------------------------------------------- DBLP networks


@dataclass
class DblpNetwork:
    """A fully assembled DBLP sharing network plus its building blocks."""

    system: P2PSystem
    spec: TopologySpec
    rules: list[CoordinationRule]
    assignment: dict[NodeId, list[PublicationRecord]]
    records_per_node: int
    overlap_probability: float

    @property
    def total_records(self) -> int:
        """Total number of records initially loaded (with duplicates)."""
        return sum(len(records) for records in self.assignment.values())

    def schemas(self) -> dict[NodeId, DatabaseSchema]:
        """Per-node schemas (re-created; used by the verification helpers)."""
        return {
            node: schema_for_variant(self.spec.variant_of(node))
            for node in self.spec.nodes
        }

    def initial_data(self) -> dict[NodeId, dict[str, list[Row]]]:
        """Per-node initial rows (re-created; used by the verification helpers)."""
        return {
            node: rows_for_variant(records, self.spec.variant_of(node))
            for node, records in self.assignment.items()
        }


def dblp_workload_parts(
    spec: TopologySpec,
    *,
    records_per_node: int = 100,
    overlap_probability: float = 0.0,
    overlap_fraction: float = 0.5,
    seed: int = 0,
) -> tuple[
    list[CoordinationRule],
    dict[NodeId, list[PublicationRecord]],
    dict[NodeId, DatabaseSchema],
    dict[NodeId, dict[str, list[Row]]],
]:
    """The raw parts of a DBLP sharing workload: rules, assignment, schemas, data.

    This is the single place the workload is assembled; both
    :func:`build_dblp_network` and :meth:`repro.api.ScenarioSpec.from_topology`
    build on it.
    """
    rules = coordination_rules_for(spec)
    assignment = distribute_records(
        spec,
        records_per_node,
        overlap_probability=overlap_probability,
        overlap_fraction=overlap_fraction,
        seed=seed,
    )
    schemas = {
        node: schema_for_variant(spec.variant_of(node)) for node in spec.nodes
    }
    data = {
        node: rows_for_variant(records, spec.variant_of(node))
        for node, records in assignment.items()
    }
    return rules, assignment, schemas, data


def build_dblp_network(
    spec: TopologySpec,
    *,
    records_per_node: int = 100,
    overlap_probability: float = 0.0,
    overlap_fraction: float = 0.5,
    seed: int = 0,
    transport: str = "sync",
    propagation: str = "once",
    latency: LatencyModel | None = None,
    max_messages: int = 2_000_000,
) -> DblpNetwork:
    """Assemble a DBLP sharing network for a given topology.

    This is the workload of the paper's Section 5 experiments: every node gets
    ``records_per_node`` synthetic publications rendered in its schema
    variant, acquainted nodes may share data with ``overlap_probability``, and
    the coordination rules translate between the variants along every import
    edge.
    """
    rules, assignment, schemas, data = dblp_workload_parts(
        spec,
        records_per_node=records_per_node,
        overlap_probability=overlap_probability,
        overlap_fraction=overlap_fraction,
        seed=seed,
    )
    system = P2PSystem.build(
        schemas,
        rules,
        data,
        transport=transport,
        propagation=propagation,
        latency=latency,
        super_peer=spec.nodes[0],
        max_messages=max_messages,
    )
    return DblpNetwork(
        system=system,
        spec=spec,
        rules=rules,
        assignment=assignment,
        records_per_node=records_per_node,
        overlap_probability=overlap_probability,
    )
