"""Network topologies and the coordination rules connecting heterogeneous peers.

The paper's experiments cover "trees, layered acyclic graphs, and cliques";
this module generates those (plus chains, stars and seeded random DAGs, used
by additional tests and ablations) as :class:`TopologySpec` objects — a list
of peers and *import edges* ``(importer, exporter)`` meaning "importer has a
coordination rule whose body is at exporter".

:func:`coordination_rules_for` then turns a topology into concrete
coordination rules between the DBLP schema variants assigned to the peers:
for every import edge, the importer gets one rule per relation of its own
variant, whose body reconstructs the publication tuple from the exporter's
variant (a join when the exporter is normalised).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.coordination.rule import CoordinationRule, NodeId
from repro.database.parser import parse_atom
from repro.database.query import Atom, Variable
from repro.errors import ReproError
from repro.workloads.dblp import SCHEMA_VARIANTS, variant_for_node_index

ImportEdge = tuple[NodeId, NodeId]


@dataclass(frozen=True)
class TopologySpec:
    """A P2P topology: peers, import edges and a nominal depth."""

    name: str
    nodes: tuple[NodeId, ...]
    edges: tuple[ImportEdge, ...]
    depth: int
    variant_by_node: dict[NodeId, str] = field(default_factory=dict, compare=False)

    @property
    def node_count(self) -> int:
        """Number of peers."""
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        """Number of import edges."""
        return len(self.edges)

    def variant_of(self, node: NodeId) -> str:
        """The schema variant assigned to ``node``."""
        if node in self.variant_by_node:
            return self.variant_by_node[node]
        return variant_for_node_index(self.nodes.index(node))


def _node_name(index: int) -> NodeId:
    return f"n{index:02d}"


def tree_topology(depth: int, fanout: int = 2) -> TopologySpec:
    """A complete tree of the given depth; parents import from their children.

    Depth 0 is a single node.  The root is node ``n00`` and accumulates every
    record of the network after the update — the configuration whose execution
    time the paper reports as linear in the depth.
    """
    if depth < 0 or fanout < 1:
        raise ReproError("tree needs depth >= 0 and fanout >= 1")
    nodes: list[NodeId] = []
    edges: list[ImportEdge] = []
    index = 0
    current_level = [_node_name(index)]
    nodes.extend(current_level)
    index += 1
    for _level in range(depth):
        next_level: list[NodeId] = []
        for parent in current_level:
            for _child in range(fanout):
                child = _node_name(index)
                index += 1
                nodes.append(child)
                next_level.append(child)
                edges.append((parent, child))
        current_level = next_level
    return TopologySpec("tree", tuple(nodes), tuple(edges), depth)


def chain_topology(length: int) -> TopologySpec:
    """A chain of ``length`` nodes; each node imports from the next one."""
    if length < 1:
        raise ReproError("chain needs at least one node")
    nodes = tuple(_node_name(i) for i in range(length))
    edges = tuple((nodes[i], nodes[i + 1]) for i in range(length - 1))
    return TopologySpec("chain", nodes, edges, length - 1)


def star_topology(leaves: int) -> TopologySpec:
    """A star: the hub imports from every leaf."""
    if leaves < 1:
        raise ReproError("star needs at least one leaf")
    hub = _node_name(0)
    leaf_nodes = tuple(_node_name(i + 1) for i in range(leaves))
    edges = tuple((hub, leaf) for leaf in leaf_nodes)
    return TopologySpec("star", (hub, *leaf_nodes), edges, 1)


def layered_topology(
    depth: int, width: int = 2, seed: int = 0, max_imports: int | None = None
) -> TopologySpec:
    """A layered acyclic graph: ``depth + 1`` layers of ``width`` nodes.

    Every node of layer *k* imports from a random non-empty subset of layer
    *k+1* (deterministic in ``seed``), so data flows from the deepest layer to
    layer 0.  ``max_imports`` caps each node's fan-in; without it a node may
    import from the whole next layer, which is faithful to the paper's small
    graphs but quadratic in ``width`` — the large scalability sweeps cap it.
    """
    if depth < 0 or width < 1:
        raise ReproError("layered topology needs depth >= 0 and width >= 1")
    if max_imports is not None and max_imports < 1:
        raise ReproError("max_imports must be at least 1")
    rng = random.Random(seed)
    layers: list[list[NodeId]] = []
    index = 0
    for _layer in range(depth + 1):
        layer = [_node_name(index + offset) for offset in range(width)]
        index += width
        layers.append(layer)
    nodes = tuple(node for layer in layers for node in layer)
    edges: list[ImportEdge] = []
    for upper, lower in zip(layers, layers[1:]):
        bound = len(lower) if max_imports is None else min(max_imports, len(lower))
        for importer in upper:
            count = rng.randint(1, bound)
            for exporter in rng.sample(lower, count):
                edges.append((importer, exporter))
    return TopologySpec("layered", nodes, tuple(edges), depth)


def clique_topology(size: int) -> TopologySpec:
    """A clique: every node imports from every other node."""
    if size < 1:
        raise ReproError("clique needs at least one node")
    nodes = tuple(_node_name(i) for i in range(size))
    edges = tuple(
        (importer, exporter)
        for importer in nodes
        for exporter in nodes
        if importer != exporter
    )
    return TopologySpec("clique", nodes, edges, size - 1)


def random_topology(size: int, edge_probability: float, seed: int = 0) -> TopologySpec:
    """A random acyclic topology: node *i* may import from any node *j > i*."""
    if size < 1:
        raise ReproError("random topology needs at least one node")
    if not 0.0 <= edge_probability <= 1.0:
        raise ReproError("edge probability must be in [0, 1]")
    rng = random.Random(seed)
    nodes = tuple(_node_name(i) for i in range(size))
    edges = []
    for i in range(size):
        for j in range(i + 1, size):
            if rng.random() < edge_probability:
                edges.append((nodes[i], nodes[j]))
    return TopologySpec("random", nodes, tuple(edges), size - 1)


#: Builders the :func:`topology_family` dispatcher knows, by family name.
TOPOLOGY_FAMILIES = ("tree", "chain", "star", "layered", "clique", "random")


def topology_family(name: str, size: int, *, seed: int = 0) -> TopologySpec:
    """Build a member of a named topology family with ``size``-ish nodes.

    One seeded entry point for sweeps that iterate families by name (the
    chaos suite, CI seed matrices): the result is deterministic in
    ``(name, size, seed)``.  Families whose shape is fully determined by the
    size (trees, chains, stars, cliques) accept and ignore the seed, so
    callers can thread one seed uniformly.  Sizes are met exactly for
    chains, stars, cliques and random graphs; trees and layered graphs
    round to the nearest complete shape.
    """
    if size < 1:
        raise ReproError("topology_family needs size >= 1")
    if name == "tree":
        return tree_topology(max(0, (size + 1).bit_length() - 2), fanout=2)
    if name == "chain":
        return chain_topology(size)
    if name == "star":
        return star_topology(max(1, size - 1))
    if name == "layered":
        width = 3 if size >= 6 else 2
        return layered_topology(
            max(1, round(size / width) - 1), width=width, seed=seed
        )
    if name == "clique":
        return clique_topology(size)
    if name == "random":
        return random_topology(size, edge_probability=0.3, seed=seed)
    raise ReproError(
        f"unknown topology family {name!r}; expected one of "
        f"{', '.join(TOPOLOGY_FAMILIES)}"
    )


# ----------------------------------------------------------------- rule builder

#: Body atoms (textual) reconstructing the publication tuple for each variant.
_BODY_BY_VARIANT = {
    "wide": ["pub(K, TI, AU, YR, VE)"],
    "split": ["article(K, TI, YR, VE)", "authored(K, AU)"],
    "norm": ["work(K, TI)", "venue_of(K, VE, YR)", "author_of(K, AU)"],
}

#: Head atoms (textual) per relation of each variant.
_HEADS_BY_VARIANT = {
    "wide": ["pub(K, TI, AU, YR, VE)"],
    "split": ["article(K, TI, YR, VE)", "authored(K, AU)"],
    "norm": ["work(K, TI)", "venue_of(K, VE, YR)", "author_of(K, AU)"],
}


def coordination_rules_for(spec: TopologySpec) -> list[CoordinationRule]:
    """Build the coordination rules of a topology over the DBLP schema variants.

    One rule per (import edge, head relation of the importer's variant); the
    rule body reconstructs the full publication tuple from the exporter's
    variant, so normalised exporters require joins on the publication key.
    """
    rules: list[CoordinationRule] = []
    for importer, exporter in spec.edges:
        importer_variant = spec.variant_of(importer)
        exporter_variant = spec.variant_of(exporter)
        if importer_variant not in SCHEMA_VARIANTS:
            raise ReproError(f"unknown variant {importer_variant!r} for {importer!r}")
        if exporter_variant not in SCHEMA_VARIANTS:
            raise ReproError(f"unknown variant {exporter_variant!r} for {exporter!r}")
        body_atoms = [parse_atom(text) for text in _BODY_BY_VARIANT[exporter_variant]]
        body = [(exporter, atom) for atom in body_atoms]
        for head_index, head_text in enumerate(_HEADS_BY_VARIANT[importer_variant]):
            head = parse_atom(head_text)
            rule_id = f"{importer}<-{exporter}/{head_index}"
            rules.append(CoordinationRule(rule_id, importer, head, body))
    return rules


def single_relation_rules_for(
    spec: TopologySpec, relation: str = "item", arity: int = 2
) -> list[CoordinationRule]:
    """Homogeneous-schema rules: every node has one ``relation`` of ``arity``.

    Used by micro-benchmarks and property tests where schema heterogeneity is
    noise: every import edge becomes one rule copying the relation.
    """
    variables = [Variable(f"X{i}") for i in range(arity)]
    atom = Atom(relation, variables)
    rules = []
    for importer, exporter in spec.edges:
        rule_id = f"{importer}<-{exporter}"
        rules.append(CoordinationRule(rule_id, importer, atom, [(exporter, atom)]))
    return rules
