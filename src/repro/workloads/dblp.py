"""Synthetic DBLP-like publication data and the three relational schema variants.

The paper's experiments load DBLP publication records into peers that use "3
different relational schemas".  The XML dump is not redistributable here, so
:class:`DblpGenerator` produces deterministic synthetic records with the same
shape — a publication key, title, one author, a venue and a year — and this
module defines three schema variants of increasing normalisation:

* ``wide`` — one relation ``pub(key, title, author, year, venue)``,
* ``split`` — ``article(key, title, year, venue)`` + ``authored(key, author)``,
* ``norm`` — ``work(key, title)`` + ``venue_of(key, venue, year)`` +
  ``author_of(key, author)``.

Coordination rules between nodes with different variants therefore involve
real joins in their bodies and multiple head relations per edge, exactly the
kind of heterogeneity the prototype's experiments exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.database.relation import Row
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.errors import ReproError

#: The names of the three schema variants, in the order nodes cycle through them.
SCHEMA_VARIANTS = ("wide", "split", "norm")

_FIRST_NAMES = (
    "alice", "bob", "carla", "dmitri", "elena", "fausto", "gabriel", "hanna",
    "ilya", "jun", "katia", "luca", "maria", "nikos", "olga", "paolo",
)
_LAST_NAMES = (
    "rossi", "smith", "kuznetsov", "papadimitriou", "tanaka", "muller",
    "garcia", "silva", "novak", "haddad", "jensen", "kim", "moreau", "zanon",
)
_VENUES = (
    "VLDB", "SIGMOD", "ICDE", "EDBT", "PODS", "CIKM", "WebDB", "P2PDB",
    "ICDT", "DEXA",
)
_TITLE_WORDS = (
    "adaptive", "distributed", "robust", "semantic", "scalable", "peer",
    "query", "update", "exchange", "integration", "coordination", "schema",
    "network", "stream", "index", "view", "materialized", "consistency",
)


@dataclass(frozen=True)
class PublicationRecord:
    """One synthetic DBLP entry (one author per record, as in author lists flattened)."""

    key: str
    title: str
    author: str
    year: int
    venue: str

    def as_tuple(self) -> Row:
        """The record as a wide tuple (key, title, author, year, venue)."""
        return (self.key, self.title, self.author, self.year, self.venue)


class DblpGenerator:
    """Deterministic generator of synthetic DBLP-like records."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def generate(self, count: int, *, start_index: int = 0) -> list[PublicationRecord]:
        """Generate ``count`` records; ``start_index`` offsets the key space.

        Records are deterministic in (seed, index), so two generators with the
        same seed produce identical overlapping ranges — which is how the
        distribution module creates controlled intersections between nodes.
        """
        records = []
        for index in range(start_index, start_index + count):
            rng = random.Random(f"{self.seed}-{index}")
            first = rng.choice(_FIRST_NAMES)
            last = rng.choice(_LAST_NAMES)
            venue = rng.choice(_VENUES)
            year = rng.randint(1994, 2004)
            words = rng.sample(_TITLE_WORDS, 3)
            records.append(
                PublicationRecord(
                    key=f"{venue.lower()}/{last}{index}",
                    title=" ".join(words),
                    author=f"{first} {last}",
                    year=year,
                    venue=venue,
                )
            )
        return records


# --------------------------------------------------------------------- schemas


def schema_for_variant(variant: str) -> DatabaseSchema:
    """The :class:`DatabaseSchema` of one of the three variants."""
    if variant == "wide":
        return DatabaseSchema(
            [
                RelationSchema(
                    "pub", ["key", "title", "author", "year", "venue"]
                )
            ]
        )
    if variant == "split":
        return DatabaseSchema(
            [
                RelationSchema("article", ["key", "title", "year", "venue"]),
                RelationSchema("authored", ["key", "author"]),
            ]
        )
    if variant == "norm":
        return DatabaseSchema(
            [
                RelationSchema("work", ["key", "title"]),
                RelationSchema("venue_of", ["key", "venue", "year"]),
                RelationSchema("author_of", ["key", "author"]),
            ]
        )
    raise ReproError(f"unknown schema variant {variant!r}")


def rows_for_variant(
    records: list[PublicationRecord], variant: str
) -> dict[str, list[Row]]:
    """Render records into the relations of a schema variant."""
    if variant == "wide":
        return {"pub": [record.as_tuple() for record in records]}
    if variant == "split":
        return {
            "article": [
                (record.key, record.title, record.year, record.venue)
                for record in records
            ],
            "authored": [(record.key, record.author) for record in records],
        }
    if variant == "norm":
        return {
            "work": [(record.key, record.title) for record in records],
            "venue_of": [
                (record.key, record.venue, record.year) for record in records
            ],
            "author_of": [(record.key, record.author) for record in records],
        }
    raise ReproError(f"unknown schema variant {variant!r}")


def variant_for_node_index(index: int) -> str:
    """Round-robin assignment of the three schema variants to node indexes."""
    return SCHEMA_VARIANTS[index % len(SCHEMA_VARIANTS)]
