"""Workload generation for the experiments of Section 5.

The paper's preliminary experiments used "local relational databases ...
based on DBLP data ... about 20000 records about publications (about 1000 per
node), organised in 3 different relational schemas", two data distributions
(0% and 50% chance of overlap between acquainted nodes) and three topologies
(trees, layered acyclic graphs and cliques).  This package generates the
synthetic equivalent:

* :mod:`repro.workloads.dblp` — deterministic DBLP-like publication records
  and the three relational schema variants,
* :mod:`repro.workloads.topologies` — tree / layered-DAG / clique / chain /
  star / random topologies and the coordination rules connecting nodes with
  heterogeneous schemas,
* :mod:`repro.workloads.distributions` — assignment of records to nodes with
  a configurable overlap probability along coordination edges,
* :mod:`repro.workloads.scenarios` — packaged scenarios: the paper's 5-node
  running example and ready-to-run DBLP sharing networks.
"""

from repro.workloads.dblp import (
    PublicationRecord,
    DblpGenerator,
    SCHEMA_VARIANTS,
    schema_for_variant,
    rows_for_variant,
)
from repro.workloads.topologies import (
    TopologySpec,
    tree_topology,
    layered_topology,
    clique_topology,
    chain_topology,
    star_topology,
    random_topology,
    coordination_rules_for,
)
from repro.workloads.distributions import distribute_records
from repro.workloads.scenarios import (
    paper_example_schemas,
    paper_example_rules,
    paper_example_data,
    build_paper_example,
    build_dblp_network,
    DblpNetwork,
)

__all__ = [
    "PublicationRecord",
    "DblpGenerator",
    "SCHEMA_VARIANTS",
    "schema_for_variant",
    "rows_for_variant",
    "TopologySpec",
    "tree_topology",
    "layered_topology",
    "clique_topology",
    "chain_topology",
    "star_topology",
    "random_topology",
    "coordination_rules_for",
    "distribute_records",
    "paper_example_schemas",
    "paper_example_rules",
    "paper_example_data",
    "build_paper_example",
    "build_dblp_network",
    "DblpNetwork",
]
