"""Assignment of publication records to peers, with controlled overlap.

The paper considered "two different data distributions.  In the first one
there is no intersection between initial data in neighbor nodes.  In the
second, there is 50% probability of intersection between initial data in nodes
linked by coordination rules; the intersection between data in other nodes is
empty."

:func:`distribute_records` reproduces that: every node first receives its own
disjoint slice of the record stream; then, independently for every import edge
and with the configured probability, a fraction of the exporter's records is
copied into the importer's initial data, creating an intersection exactly
between acquainted nodes.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from repro.coordination.rule import NodeId
from repro.errors import ReproError
from repro.workloads.dblp import DblpGenerator, PublicationRecord
from repro.workloads.topologies import TopologySpec


def distribute_records(
    spec: TopologySpec,
    records_per_node: int,
    *,
    overlap_probability: float = 0.0,
    overlap_fraction: float = 0.5,
    seed: int = 0,
) -> dict[NodeId, list[PublicationRecord]]:
    """Assign ``records_per_node`` synthetic records to every peer of a topology.

    ``overlap_probability`` is the per-edge chance that the two acquainted
    nodes share data at all; when they do, ``overlap_fraction`` of the
    exporter's records is copied into the importer.  ``overlap_probability=0``
    reproduces the paper's first distribution, ``0.5`` its second.
    """
    if records_per_node < 0:
        raise ReproError("records_per_node must be non-negative")
    if not 0.0 <= overlap_probability <= 1.0:
        raise ReproError("overlap_probability must be in [0, 1]")
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ReproError("overlap_fraction must be in [0, 1]")

    generator = DblpGenerator(seed=seed)
    rng = random.Random(f"{seed}-overlap")

    assignment: dict[NodeId, list[PublicationRecord]] = {}
    for index, node in enumerate(spec.nodes):
        assignment[node] = generator.generate(
            records_per_node, start_index=index * records_per_node
        )

    for importer, exporter in spec.edges:
        if overlap_probability == 0.0:
            continue
        if rng.random() >= overlap_probability:
            continue
        exporter_records = assignment[exporter]
        count = int(len(exporter_records) * overlap_fraction)
        if count == 0:
            continue
        shared = rng.sample(exporter_records, count)
        existing = {record.key for record in assignment[importer]}
        assignment[importer].extend(
            record for record in shared if record.key not in existing
        )
    return assignment


def overlap_statistics(
    assignment: Mapping[NodeId, Sequence[PublicationRecord]],
    spec: TopologySpec,
) -> dict[str, float]:
    """Measure the achieved intersection along edges (sanity metric for tests)."""
    edge_overlaps = []
    for importer, exporter in spec.edges:
        importer_keys = {record.key for record in assignment[importer]}
        exporter_keys = {record.key for record in assignment[exporter]}
        if not exporter_keys:
            edge_overlaps.append(0.0)
            continue
        edge_overlaps.append(len(importer_keys & exporter_keys) / len(exporter_keys))
    total_records = sum(len(records) for records in assignment.values())
    distinct_keys = len(
        {record.key for records in assignment.values() for record in records}
    )
    return {
        "mean_edge_overlap": (
            sum(edge_overlaps) / len(edge_overlaps) if edge_overlaps else 0.0
        ),
        "edges_with_overlap": float(sum(1 for o in edge_overlaps if o > 0)),
        "total_records": float(total_records),
        "distinct_keys": float(distinct_keys),
    }
