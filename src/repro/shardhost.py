"""Standalone shard-host server: ``python -m repro.shardhost --bind HOST:PORT``.

Runs one :class:`~repro.sharding.sockets.ShardHost` in the foreground.  A
coordinator built with ``transport="socket"`` dials a fleet of these (see
``docs/engines.md``), ships each the shard workers it should run, and drives
the update protocol over the connection; when the coordinator disconnects the
host loops back to accepting the next one, so one fleet serves many runs.

With ``--bind HOST:0`` the OS picks the port; the host announces the bound
address on stdout (``shardhost listening on HOST:PORT``), which is how the
localhost auto-spawn helper discovers its hosts.  Frames are pickles — bind
to localhost or a trusted network segment only (see the trust-model note in
:mod:`repro.sharding.sockets`).
"""

from __future__ import annotations

import argparse
import sys

from repro.sharding.sockets import (
    DEFAULT_MAX_FRAME,
    HOST_ANNOUNCE,
    ShardHost,
    parse_address,
)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed separately so tests can exercise it)."""
    parser = argparse.ArgumentParser(
        prog="repro.shardhost",
        description="Host shard workers for a socket-transport coordinator.",
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="HOST:PORT to listen on (port 0 lets the OS pick; default %(default)s)",
    )
    parser.add_argument(
        "--max-frame",
        type=int,
        default=DEFAULT_MAX_FRAME,
        help="refuse frames larger than this many bytes (default %(default)s)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    host = ShardHost(parse_address(args.bind), max_frame=args.max_frame)
    print(f"{HOST_ANNOUNCE}{host.address[0]}:{host.port}", flush=True)
    try:
        host.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        host.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
