"""Coordination rules (Definition 2 of the paper).

A :class:`CoordinationRule` has a unique identifier, a *head* — an atom to be
materialised at the ``target`` node — and a *body* — a conjunction of atoms,
each located at a ``source`` node, plus built-in comparisons.  Existential
variables in the head are allowed; they are detected by comparing head and
body variables and later filled with labelled nulls by the chase step of the
local database.

The direction of the **dependency edge** derived from a rule is the opposite
of the data flow (Definition 5): data flows from the body nodes to the head
node, while the dependency edge goes from the head node (which *depends on*
its sources) to each body node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.database.parser import parse_rule_text
from repro.database.query import Atom, Comparison, ConjunctiveQuery, Variable
from repro.errors import RuleError

NodeId = str
"""Identifier of a peer node.  The paper uses integer indexes; strings are
more readable in examples and traces and work identically."""


@dataclass(frozen=True)
class CoordinationRule:
    """A single coordination rule ``body@sources ⇒ head@target``."""

    rule_id: str
    target: NodeId
    head: Atom
    body: tuple[tuple[NodeId, Atom], ...]
    comparisons: tuple[Comparison, ...] = field(default=())

    def __init__(
        self,
        rule_id: str,
        target: NodeId,
        head: Atom,
        body: Iterable[tuple[NodeId, Atom]],
        comparisons: Iterable[Comparison] = (),
    ):
        body = tuple(body)
        comparisons = tuple(comparisons)
        if not rule_id:
            raise RuleError("rule needs a non-empty identifier")
        if not body:
            raise RuleError(f"rule {rule_id!r} has an empty body")
        for node, _atom in body:
            if node == target:
                raise RuleError(
                    f"rule {rule_id!r}: body node {node!r} equals the target; "
                    "the paper requires distinct indices"
                )
        object.__setattr__(self, "rule_id", rule_id)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "comparisons", comparisons)
        # Validate built-ins against body variables via the query constructor.
        ConjunctiveQuery(head, [atom for _node, atom in body], comparisons)

    # ----------------------------------------------------------------- derived

    @property
    def sources(self) -> tuple[NodeId, ...]:
        """The distinct source (body) nodes, in order of first occurrence."""
        seen: list[NodeId] = []
        for node, _atom in self.body:
            if node not in seen:
                seen.append(node)
        return tuple(seen)

    @property
    def source(self) -> NodeId:
        """The single source node (the paper's ``id(rule)``).

        Most rules in the paper have a single-node body; rules that span
        several sources do not have *one* source, so accessing this property
        on them raises :class:`RuleError` — callers that support multi-source
        rules should use :attr:`sources` instead.
        """
        sources = self.sources
        if len(sources) != 1:
            raise RuleError(
                f"rule {self.rule_id!r} has {len(sources)} source nodes; "
                "use .sources"
            )
        return sources[0]

    @property
    def query(self) -> ConjunctiveQuery:
        """The rule seen as a conjunctive query (head ← body)."""
        return ConjunctiveQuery(
            self.head, [atom for _node, atom in self.body], self.comparisons
        )

    def body_query_for(self, node: NodeId) -> ConjunctiveQuery:
        """The part of the body located at ``node``, as a body-only query.

        This is what the head node sends to a source node when it evaluates a
        multi-source rule by fetching each source's fragment and joining
        locally.
        """
        atoms = [atom for body_node, atom in self.body if body_node == node]
        if not atoms:
            raise RuleError(f"rule {self.rule_id!r} has no body atom at {node!r}")
        relevant_vars = {v for atom in atoms for v in atom.variables}
        comparisons = tuple(
            c for c in self.comparisons if set(c.variables) <= relevant_vars
        )
        return ConjunctiveQuery(None, atoms, comparisons)

    @property
    def distinguished_variables(self) -> tuple[Variable, ...]:
        """Head variables bound by the body (the exported columns)."""
        return self.query.distinguished_variables

    @property
    def existential_variables(self) -> tuple[Variable, ...]:
        """Head variables not bound by the body."""
        return self.query.existential_variables

    @property
    def dependency_edges(self) -> tuple[tuple[NodeId, NodeId], ...]:
        """Dependency edges induced by this rule: (target → each source)."""
        return tuple((self.target, source) for source in self.sources)

    def body_relations_at(self, node: NodeId) -> tuple[str, ...]:
        """Names of the body relations located at ``node``."""
        seen: list[str] = []
        for body_node, atom in self.body:
            if body_node == node and atom.relation not in seen:
                seen.append(atom.relation)
        return tuple(seen)

    def __str__(self) -> str:
        body = ", ".join(f"{node}:{atom}" for node, atom in self.body)
        if self.comparisons:
            body += ", " + ", ".join(str(c) for c in self.comparisons)
        return f"{self.rule_id}: {body} -> {self.target}:{self.head}"


def rule_from_text(rule_id: str, text: str) -> CoordinationRule:
    """Build a rule from the paper's arrow syntax.

    Example::

        rule_from_text("r4", "B: b(X,Y), b(X,Z), X != Z -> A: a(X,Y)")
    """
    head_node, head_atom, body_literals, comparisons = parse_rule_text(text)
    return CoordinationRule(rule_id, head_node, head_atom, body_literals, comparisons)
