"""Coordination rules and the dependency structure they induce.

A coordination rule (Definition 2) lets a node *i* fetch data from its
acquaintances *j1 ... jk*::

    j1 : b1(x1, y1)  ∧ ... ∧  jk : bk(xk, yk)   ⇒   i : h(x)

This package provides:

* :mod:`repro.coordination.rule` — :class:`CoordinationRule` and parsing from
  the paper's arrow syntax,
* :mod:`repro.coordination.depgraph` — dependency edges (Definition 5),
  dependency paths and *maximal* dependency paths (Definitions 6–7), and the
  separation check of Definition 10,
* :mod:`repro.coordination.registry` — :class:`RuleRegistry`, the mutable set
  of rules of a whole P2P system, supporting the atomic ``addLink`` /
  ``deleteLink`` changes of Section 4.
"""

from repro.coordination.rule import CoordinationRule, rule_from_text
from repro.coordination.depgraph import (
    DependencyGraph,
    dependency_edges,
    dependency_paths,
    maximal_dependency_paths,
    is_separated,
)
from repro.coordination.registry import RuleRegistry

__all__ = [
    "CoordinationRule",
    "rule_from_text",
    "DependencyGraph",
    "dependency_edges",
    "dependency_paths",
    "maximal_dependency_paths",
    "is_separated",
    "RuleRegistry",
]
