"""Per-run change sets and the shared structural digest.

Two previously-independent pieces of bookkeeping meet here:

* :class:`ChangeSet` describes *what changed* in a system between two runs —
  the rows inserted per node and relation, plus two coarse flags (rows were
  removed / the rule set changed).  The warm engines build one from the
  structural sync delta they ship to their workers and use
  :attr:`ChangeSet.incremental_ok` to decide whether the next update run can
  be *delta-driven* (semi-naive: seed the chase with the inserted rows and
  propagate only new derivations) or must fall back to the naive full
  re-pull.  Workers accumulate shipped deltas in a :class:`ChangeAccumulator`
  and seed the update protocol from the resulting change set
  (:meth:`repro.core.system.P2PSystem.seed_update_delta`).

* :class:`StructuralDigest` is the *one* fingerprint of a system's logical
  state — the rule set plus every relation's contents.  It used to exist
  twice (as the memo key of :meth:`repro.api.session.Session.update` and as
  the ad-hoc rules/facts mirror of
  :class:`repro.sharding.pool.WorldMirror`); both now delegate to
  :func:`structural_digest`, so "has anything changed?" has a single
  definition everywhere.  The digest is hashable (cache keys) and
  structural by construction: ``addLink``/``deleteLink`` changes the rules
  part, any insertion changes the data part.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.coordination.rule import CoordinationRule, NodeId
from repro.database.relation import Row

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.system import P2PSystem


# ----------------------------------------------------------------- change sets


@dataclass(frozen=True)
class ChangeSet:
    """What changed in a system between two runs, from the protocol's view.

    ``inserts`` maps node ids to per-relation tuples of rows that *appeared*
    since the last run; ``removals`` is set when any relation lost rows or
    was rewritten wholesale; ``rule_changes`` when rules were added, removed
    or edited.  Only pure-insert change sets are eligible for delta-driven
    (semi-naive) evaluation — the chase is monotone, so there is no
    incremental story for retractions or rule edits, and those fall back to
    the naive full re-pull.
    """

    inserts: Mapping[NodeId, Mapping[str, tuple[Row, ...]]] = field(
        default_factory=dict
    )
    removals: bool = False
    rule_changes: bool = False

    @property
    def empty(self) -> bool:
        """True when nothing changed at all."""
        return not (self.inserts or self.removals or self.rule_changes)

    @property
    def incremental_ok(self) -> bool:
        """True when the change is pure row insertion (delta path eligible).

        An *empty* change set is also eligible: an incremental run seeded
        with nothing is a legitimate no-op (the network is already at its
        fix-point by Lemma 1).
        """
        return not (self.removals or self.rule_changes)

    @property
    def inserted_rows(self) -> int:
        """Total number of inserted rows across all nodes and relations."""
        return sum(
            len(rows)
            for relations in self.inserts.values()
            for rows in relations.values()
        )

    def union(self, other: "ChangeSet") -> "ChangeSet":
        """Merge two change logs into one canonical set.

        Inserts union set-wise per node and relation and come back in a
        canonical sorted order, so the merge is idempotent, commutative and
        associative — the properties the post-partition reconciliation pass
        (:mod:`repro.faults.reconcile`) is built on.  The coarse flags OR.
        """
        merged: dict[NodeId, dict[str, tuple[Row, ...]]] = {}
        for source in (self.inserts, other.inserts):
            for node_id, relations in source.items():
                per_node = merged.setdefault(node_id, {})
                for relation_name, rows in relations.items():
                    existing = per_node.get(relation_name, ())
                    per_node[relation_name] = tuple(
                        sorted(set(existing) | set(rows), key=repr)
                    )
        return ChangeSet(
            inserts={
                node_id: dict(sorted(relations.items()))
                for node_id, relations in sorted(merged.items())
            },
            removals=self.removals or other.removals,
            rule_changes=self.rule_changes or other.rule_changes,
        )

    @classmethod
    def from_sync_delta(cls, delta: Any) -> "ChangeSet":
        """Build from a :class:`repro.sharding.pool.SyncDelta`.

        Duck-typed (``inserts`` / ``replaces`` / ``add_rules`` /
        ``remove_rules`` attributes) so this module stays import-cycle-free
        below the sharding layer.
        """
        return cls(
            inserts={
                node_id: dict(relations)
                for node_id, relations in delta.inserts.items()
            },
            removals=bool(delta.replaces),
            rule_changes=bool(delta.add_rules or delta.remove_rules),
        )


class ChangeAccumulator:
    """Folds shipped sync deltas into one :class:`ChangeSet` between runs.

    Lives inside a persistent worker: every ``sync`` command notes its
    payload here, and the next *update* start takes the accumulated change
    set (clearing the accumulator).  Discovery starts leave it untouched, so
    an insert shipped before a discovery run still seeds the following
    incremental update.
    """

    def __init__(self) -> None:
        self._inserts: dict[NodeId, dict[str, list[Row]]] = {}
        self._removals = False
        self._rule_changes = False

    def note_sync_payload(self, payload: Mapping[str, Any]) -> None:
        """Fold one shipped delta (a ``SyncDelta.for_shard`` dict) in."""
        if payload.get("add_rules") or payload.get("remove_rules"):
            self._rule_changes = True
        if payload.get("replaces"):
            self._removals = True
        for node_id, relations in (payload.get("inserts") or {}).items():
            per_node = self._inserts.setdefault(node_id, {})
            for relation_name, rows in relations.items():
                per_node.setdefault(relation_name, []).extend(rows)

    def take(self) -> ChangeSet:
        """Return the accumulated change set and reset the accumulator."""
        changes = ChangeSet(
            inserts={
                node_id: {
                    relation_name: tuple(rows)
                    for relation_name, rows in relations.items()
                }
                for node_id, relations in self._inserts.items()
            },
            removals=self._removals,
            rule_changes=self._rule_changes,
        )
        self._inserts = {}
        self._removals = False
        self._rule_changes = False
        return changes


# ------------------------------------------------------------------- digests


def rules_fingerprint(rules: Iterable[CoordinationRule]) -> dict[str, str]:
    """``rule_id -> str(rule)`` for a rule set.

    The string form captures body, head and comparisons, so editing a rule
    under the same id reads as remove + add.
    """
    return {rule.rule_id: str(rule) for rule in rules}


@dataclass(frozen=True)
class StructuralDigest:
    """A hashable digest of a system's rule set and relation contents.

    Equality is structural: two digests are equal exactly when the systems
    hold the same rules (by id and text) and the same rows in every node's
    relations.  This is the single fingerprint behind both the
    ``Session.update`` strategy-memo cache and the warm pools'
    :class:`~repro.sharding.pool.WorldMirror`.
    """

    rules: tuple[tuple[str, str], ...]
    data: tuple[tuple[NodeId, tuple[tuple[str, frozenset[Row]], ...]], ...]


def structural_digest(
    rules: Mapping[str, str],
    facts: Mapping[NodeId, Mapping[str, frozenset[Row]]],
) -> StructuralDigest:
    """Build the digest from a rules fingerprint and per-node fact sets."""
    return StructuralDigest(
        rules=tuple(sorted(rules.items())),
        data=tuple(
            (
                node_id,
                tuple(
                    (relation_name, frozenset(rows))
                    for relation_name, rows in sorted(relations.items())
                ),
            )
            for node_id, relations in sorted(facts.items())
        ),
    )


def digest_system(system: "P2PSystem") -> StructuralDigest:
    """The live system's structural digest (rules + every relation's rows)."""
    return structural_digest(rules_fingerprint(system.registry), system.databases())
