"""Dependency edges, dependency paths and separation (Definitions 5–7 and 10).

The dependency structure of a P2P system is derived from its coordination
rules: there is a dependency edge from node *i* to node *j* whenever a rule
has its head at *i* and (part of) its body at *j*.  Note that the edge points
*against* the data flow — it records who *i* depends on.

A *dependency path* for node *i* (Definition 6) is a sequence of nodes
``i = i1, i2, ..., in`` following dependency edges such that the prefix
``i1 ... i(n-1)`` is simple (no repeated node); the last node may close a
loop.  A *maximal* dependency path (Definition 7) is one that cannot be
extended and still be a dependency path.  The topology discovery algorithm of
Section 3 makes every node aware of exactly these paths.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.coordination.rule import CoordinationRule, NodeId

Edge = tuple[NodeId, NodeId]
Path = tuple[NodeId, ...]


def dependency_edges(rules: Iterable[CoordinationRule]) -> set[Edge]:
    """All dependency edges induced by ``rules`` (head node → each body node)."""
    edges: set[Edge] = set()
    for rule in rules:
        edges.update(rule.dependency_edges)
    return edges


class DependencyGraph:
    """The dependency graph of a P2P system (nodes + dependency edges)."""

    def __init__(
        self,
        nodes: Iterable[NodeId] = (),
        edges: Iterable[Edge] = (),
    ):
        self._successors: dict[NodeId, set[NodeId]] = defaultdict(set)
        self._nodes: set[NodeId] = set(nodes)
        for source, target in edges:
            self.add_edge(source, target)

    @classmethod
    def from_rules(
        cls, rules: Iterable[CoordinationRule], nodes: Iterable[NodeId] = ()
    ) -> "DependencyGraph":
        """Build the graph from a collection of coordination rules."""
        rules = list(rules)
        graph = cls(nodes=nodes, edges=dependency_edges(rules))
        for rule in rules:
            graph.add_node(rule.target)
            for source in rule.sources:
                graph.add_node(source)
        return graph

    # ------------------------------------------------------------- structure

    def add_node(self, node: NodeId) -> None:
        """Add an isolated node (no-op if already present)."""
        self._nodes.add(node)

    def add_edge(self, source: NodeId, target: NodeId) -> None:
        """Add a dependency edge ``source → target``."""
        self._nodes.add(source)
        self._nodes.add(target)
        self._successors[source].add(target)

    def remove_edge(self, source: NodeId, target: NodeId) -> None:
        """Remove a dependency edge if present."""
        self._successors.get(source, set()).discard(target)

    @property
    def nodes(self) -> frozenset[NodeId]:
        """All nodes of the graph."""
        return frozenset(self._nodes)

    @property
    def edges(self) -> frozenset[Edge]:
        """All dependency edges."""
        return frozenset(
            (source, target)
            for source, targets in self._successors.items()
            for target in targets
        )

    def successors(self, node: NodeId) -> frozenset[NodeId]:
        """Nodes that ``node`` depends on (its acquaintances as data sources)."""
        return frozenset(self._successors.get(node, set()))

    # ----------------------------------------------------------------- paths

    def dependency_paths(self, start: NodeId) -> Iterator[Path]:
        """Yield every dependency path starting at ``start`` (Definition 6)."""
        def walk(path: list[NodeId], visited: set[NodeId]) -> Iterator[Path]:
            yield tuple(path)
            last = path[-1]
            # Extending is only allowed while the current path is simple,
            # because the extended path's prefix must be simple.
            if len(set(path)) != len(path):
                return
            for successor in sorted(self._successors.get(last, set())):
                path.append(successor)
                yield from walk(path, visited)
                path.pop()

        yield from walk([start], {start})

    def maximal_dependency_paths(
        self, start: NodeId, *, limit: int | None = None
    ) -> list[Path]:
        """All maximal dependency paths of ``start`` (Definition 7), sorted.

        A path is maximal when no successor of its last node can extend it
        into another dependency path: either the last node has no successors,
        or the path already ends in a repeated node (its prefix would stop
        being simple if extended).

        The number of maximal paths is factorial in the node count on dense
        graphs (this is where the paper's 2EXPTIME bound comes from); ``limit``
        caps the enumeration so discovery on cliques stays tractable — the
        first ``limit`` paths in DFS order are returned.
        """
        maximal: list[Path] = []
        for path in self.dependency_paths(start):
            is_simple = len(set(path)) == len(path)
            last = path[-1]
            if not is_simple:
                maximal.append(path)
            elif not self._successors.get(last):
                if len(path) > 1 or not self._successors.get(start):
                    maximal.append(path)
            if limit is not None and len(maximal) >= limit:
                break
        # A lone start node only counts when it truly has no outgoing edges.
        return sorted(set(maximal))

    def reachable_from(self, start: NodeId) -> frozenset[NodeId]:
        """All nodes reachable from ``start`` along dependency edges."""
        seen: set[NodeId] = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for successor in self._successors.get(node, set()):
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return frozenset(seen)

    def is_acyclic(self) -> bool:
        """True when the dependency graph has no cycles."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[NodeId, int] = {node: WHITE for node in self._nodes}

        def visit(node: NodeId) -> bool:
            colour[node] = GREY
            for successor in self._successors.get(node, set()):
                state = colour.get(successor, WHITE)
                if state == GREY:
                    return False
                if state == WHITE and not visit(successor):
                    return False
            colour[node] = BLACK
            return True

        return all(
            visit(node) for node in self._nodes if colour[node] == WHITE
        )

    def __repr__(self) -> str:
        return f"DependencyGraph({len(self._nodes)} nodes, {len(self.edges)} edges)"


# --------------------------------------------------------------------- helpers


def dependency_paths(
    rules: Iterable[CoordinationRule], start: NodeId
) -> list[Path]:
    """All dependency paths of ``start`` given a rule set."""
    return list(DependencyGraph.from_rules(rules).dependency_paths(start))


def maximal_dependency_paths(
    rules: Iterable[CoordinationRule], start: NodeId
) -> list[Path]:
    """All maximal dependency paths of ``start`` given a rule set."""
    return DependencyGraph.from_rules(rules).maximal_dependency_paths(start)


def is_separated(
    graph: DependencyGraph,
    group_a: Iterable[NodeId],
    group_b: Iterable[NodeId],
) -> bool:
    """Definition 10(1): ``group_a`` is separated from ``group_b``.

    True when no dependency path starting at a node of ``group_a`` involves a
    node of ``group_b`` — equivalently, no node of ``group_b`` is reachable
    from ``group_a`` along dependency edges.
    """
    targets = set(group_b)
    for node in group_a:
        if graph.reachable_from(node) & targets:
            return False
    return True
