"""The mutable rule set of a whole P2P system.

The super-peer of the paper's prototype "can read coordination rules for all
peers from a file and broadcast this file to all peers on the network", and
the dynamic-network model of Section 4 manipulates the system exclusively via
``addLink`` / ``deleteLink`` operations on rules.  :class:`RuleRegistry` is the
corresponding in-library object: a collection of coordination rules indexed by
target node, source node and rule id, from which the dependency graph and the
per-node rule views are derived.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.coordination.depgraph import DependencyGraph
from repro.coordination.rule import CoordinationRule, NodeId
from repro.errors import ChangeError, RuleError


class RuleRegistry:
    """All coordination rules of a P2P system, with add/delete semantics."""

    def __init__(self, rules: Iterable[CoordinationRule] = ()):
        self._rules: dict[str, CoordinationRule] = {}
        self._by_target: dict[NodeId, set[str]] = {}
        self._by_source: dict[NodeId, set[str]] = {}
        for rule in rules:
            self.add(rule)

    # ------------------------------------------------------------- mutation

    def add(self, rule: CoordinationRule) -> None:
        """Register a rule.

        Definition 8 requires rule names to be unique for a given pair of
        nodes; we enforce the stronger (and simpler) global uniqueness of rule
        ids, which the paper's examples also satisfy.
        """
        if rule.rule_id in self._rules:
            raise ChangeError(f"rule id {rule.rule_id!r} already registered")
        self._rules[rule.rule_id] = rule
        self._by_target.setdefault(rule.target, set()).add(rule.rule_id)
        for source in rule.sources:
            self._by_source.setdefault(source, set()).add(rule.rule_id)

    def remove(self, rule_id: str) -> CoordinationRule:
        """Remove and return the rule named ``rule_id``."""
        rule = self._rules.pop(rule_id, None)
        if rule is None:
            raise ChangeError(f"unknown rule id {rule_id!r}")
        self._by_target[rule.target].discard(rule_id)
        for source in rule.sources:
            self._by_source[source].discard(rule_id)
        return rule

    # -------------------------------------------------------------- queries

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[CoordinationRule]:
        return iter(self._rules.values())

    def get(self, rule_id: str) -> CoordinationRule:
        """Return the rule named ``rule_id`` or raise :class:`RuleError`."""
        try:
            return self._rules[rule_id]
        except KeyError:
            raise RuleError(f"unknown rule id {rule_id!r}") from None

    def rules_targeting(self, node: NodeId) -> tuple[CoordinationRule, ...]:
        """Rules whose head is at ``node`` (the node's incoming-data rules)."""
        ids = sorted(self._by_target.get(node, set()))
        return tuple(self._rules[rule_id] for rule_id in ids)

    def rules_sourced_at(self, node: NodeId) -> tuple[CoordinationRule, ...]:
        """Rules that read data from ``node``."""
        ids = sorted(self._by_source.get(node, set()))
        return tuple(self._rules[rule_id] for rule_id in ids)

    def nodes(self) -> frozenset[NodeId]:
        """Every node mentioned by some rule."""
        mentioned: set[NodeId] = set()
        for rule in self._rules.values():
            mentioned.add(rule.target)
            mentioned.update(rule.sources)
        return frozenset(mentioned)

    def dependency_graph(self, nodes: Iterable[NodeId] = ()) -> DependencyGraph:
        """The dependency graph induced by the current rule set."""
        return DependencyGraph.from_rules(self._rules.values(), nodes=nodes)

    def copy(self) -> "RuleRegistry":
        """An independent copy (rules themselves are immutable)."""
        return RuleRegistry(self._rules.values())

    def __repr__(self) -> str:
        return f"RuleRegistry({len(self._rules)} rules over {len(self.nodes())} nodes)"
