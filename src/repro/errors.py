"""Exception hierarchy for the P2P database reproduction.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the library can catch one base class.  The sub-classes mirror
the major subsystems: the relational engine, the coordination-rule layer, the
simulated network, and the distributed protocol itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relation schema is malformed or used inconsistently.

    Raised for duplicate attribute names, arity mismatches between a tuple and
    the schema it is inserted into, or references to relations that do not
    exist in a :class:`~repro.database.database.LocalDatabase`.
    """


class QueryError(ReproError):
    """A conjunctive query is syntactically or semantically invalid.

    Examples: the textual parser cannot parse a rule, a head variable is not
    bound anywhere, or a built-in predicate compares two unbound variables.
    """


class RuleError(ReproError):
    """A coordination rule is invalid.

    Raised when the head and a body atom are assigned to the same node, when a
    rule identifier is reused for the same pair of nodes, or when a rule
    references a relation missing from the node schema it targets.
    """


class NetworkError(ReproError):
    """A failure in the simulated P2P message substrate.

    Raised when sending to an unregistered peer, when a pipe has been closed,
    or when the transport has been shut down while messages are still queued.
    """


class PipeClosedError(NetworkError):
    """A message was sent on a pipe that has already been closed."""


class UnknownPeerError(NetworkError):
    """A message was addressed to a peer identifier that is not registered."""


class ProtocolError(ReproError):
    """The distributed discovery/update protocol received an unexpected message.

    This indicates either a corrupted message payload or a message type that
    the receiving node cannot handle in its current state.
    """


class TerminationError(ReproError):
    """The update run did not quiesce within the configured bound.

    The paper's Theorem 2(3) shows that under an *infinite* change stream the
    algorithm may not terminate; the engine therefore enforces an explicit
    bound on simulated steps and raises this error when the bound is hit.
    """


class FaultError(ReproError):
    """A fault-injection plan is invalid or a fault could not be applied.

    Raised when a :class:`~repro.faults.plan.FaultPlan` references an unknown
    fault kind or phase, when a fault targets an engine that cannot express it
    (e.g. a host partition on a non-socket transport), or when a log-based
    reconciliation pass is asked to merge change logs it cannot merge safely.
    """


class PartitionError(NetworkError):
    """A send was blocked by an injected (and not yet healed) host partition.

    Subclasses :class:`NetworkError` so the existing crash-detection and
    retry machinery treats a partition like any other transport failure,
    while chaos tests can still assert the *typed* cause.
    """


class ChangeError(ReproError):
    """An atomic network change (addLink/deleteLink) is invalid.

    Raised for deleting a rule id that does not exist between the given pair
    of nodes, or adding a rule with an id already used for that pair
    (Definition 8 requires per-pair unique rule names).
    """
