"""The paper's primary contribution: the distributed discovery and update algorithms.

* :mod:`repro.core.state` — the per-node data structures of Section 3
  (``state_d``, ``state_u``, ``Rules``, ``Paths``, ``Edges``, ``owner``),
* :mod:`repro.core.discovery` — topology discovery (algorithms A1–A3),
* :mod:`repro.core.update` — the distributed database update (algorithms
  A4–A6) with loop detection and fix-point tracking,
* :mod:`repro.core.node` — :class:`PeerNode`, one peer with its local
  database, its coordination rules and both protocol engines,
* :mod:`repro.core.system` — :class:`P2PSystem`, the whole network: nodes,
  rule registry, pipes and transport,
* :mod:`repro.core.superpeer` — :class:`SuperPeer`, the orchestration role of
  Section 5 (rule broadcast, starting discovery/update, statistics),
* :mod:`repro.core.dynamics` — the dynamic-network model of Section 4
  (``addLink`` / ``deleteLink``, changes, sub-changes, sound/complete
  envelopes, separation),
* :mod:`repro.core.fixpoint` — fix-point/quiescence checking utilities.
"""

from repro.core.state import DiscoveryState, UpdateState, NodeState
from repro.core.node import PeerNode
from repro.core.system import P2PSystem
from repro.core.superpeer import SuperPeer
from repro.core.dynamics import (
    AddLink,
    DeleteLink,
    NetworkChange,
    sound_envelope,
    complete_envelope,
    is_sound_answer,
    is_complete_answer,
)
from repro.core.fixpoint import (
    all_nodes_closed,
    satisfies_all_rules,
    verify_against_centralized,
)

__all__ = [
    "DiscoveryState",
    "UpdateState",
    "NodeState",
    "PeerNode",
    "P2PSystem",
    "SuperPeer",
    "AddLink",
    "DeleteLink",
    "NetworkChange",
    "sound_envelope",
    "complete_envelope",
    "is_sound_answer",
    "is_complete_answer",
    "all_nodes_closed",
    "satisfies_all_rules",
    "verify_against_centralized",
]
