"""Dynamic behaviour of the P2P network (Section 4 of the paper).

The network changes only through two atomic operations:

* ``addLink(i, j, rule, id)`` — add coordination rule ``rule`` named ``id``
  with body at node *j* and head at node *i*; node *i* is notified,
* ``deleteLink(i, j, id)`` — delete the rule named ``id`` between *i* and *j*;
  node *i* is notified.

A *change* is a sequence of atomic operations (Definition 8); a *sub-change*
with respect to a node set A keeps only the operations relevant to A, in the
same order.  Definition 9 then bounds what a run interleaved with a change may
return:

* a **sound** answer is contained in the result obtained by executing all the
  ``addLink`` operations *before* the run and none of the ``deleteLink``
  operations,
* a **complete** answer contains the result obtained by executing all the
  ``deleteLink`` operations *before* the run and none of the ``addLink``
  operations.

:func:`sound_envelope` / :func:`complete_envelope` compute those two reference
databases with the centralized baseline, and :func:`is_sound_answer` /
:func:`is_complete_answer` check a measured result against them — this is how
the property tests exercise Theorem 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.baselines.centralized import DataSpec, SchemaSpec, centralized_update
from repro.coordination.depgraph import DependencyGraph, is_separated
from repro.coordination.rule import CoordinationRule, NodeId
from repro.core.system import P2PSystem
from repro.database.nulls import is_null
from repro.database.relation import Row
from repro.errors import ChangeError

Snapshot = Mapping[NodeId, Mapping[str, frozenset[Row]]]


@dataclass(frozen=True)
class AddLink:
    """Atomic change: install ``rule`` (head node gets the notification)."""

    rule: CoordinationRule

    @property
    def rule_id(self) -> str:
        """The name of the added rule."""
        return self.rule.rule_id

    @property
    def involved_nodes(self) -> frozenset[NodeId]:
        """Nodes this operation is relevant to."""
        return frozenset((self.rule.target, *self.rule.sources))


@dataclass(frozen=True)
class DeleteLink:
    """Atomic change: remove the rule named ``rule_id`` (head node notified)."""

    target: NodeId
    source: NodeId
    rule_id: str

    @property
    def involved_nodes(self) -> frozenset[NodeId]:
        """Nodes this operation is relevant to."""
        return frozenset((self.target, self.source))


AtomicChange = AddLink | DeleteLink


@dataclass
class NetworkChange:
    """A finite sequence of atomic change operations (Definition 8)."""

    operations: list[AtomicChange] = field(default_factory=list)

    def __iter__(self) -> Iterator[AtomicChange]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    def add_link(self, rule: CoordinationRule) -> "NetworkChange":
        """Append an ``addLink`` operation (returns self for chaining)."""
        self.operations.append(AddLink(rule))
        return self

    def delete_link(
        self, target: NodeId, source: NodeId, rule_id: str
    ) -> "NetworkChange":
        """Append a ``deleteLink`` operation (returns self for chaining)."""
        self.operations.append(DeleteLink(target, source, rule_id))
        return self

    def initial_subchange(self, length: int) -> "NetworkChange":
        """The prefix of the change of the given length (Definition 8.3)."""
        if length < 0 or length > len(self.operations):
            raise ChangeError(f"invalid prefix length {length}")
        return NetworkChange(list(self.operations[:length]))

    def subchange_for(self, nodes: Iterable[NodeId]) -> "NetworkChange":
        """The operations relevant to ``nodes``, in the original order (Def. 8.4)."""
        node_set = frozenset(nodes)
        return NetworkChange(
            [op for op in self.operations if op.involved_nodes & node_set]
        )

    @property
    def added_rules(self) -> list[CoordinationRule]:
        """Rules added by the change, in order."""
        return [op.rule for op in self.operations if isinstance(op, AddLink)]

    @property
    def deleted_rule_ids(self) -> list[str]:
        """Rule ids deleted by the change, in order."""
        return [op.rule_id for op in self.operations if isinstance(op, DeleteLink)]


# --------------------------------------------------------------------- applying


def apply_change_operation(system: P2PSystem, operation: AtomicChange) -> None:
    """Apply one atomic change to a running system, with the paper's notification.

    ``addLink`` installs the rule and, when the update phase has already
    started at the target, immediately queries the new rule's sources so the
    imported data keeps flowing; ``deleteLink`` removes the rule — data that
    was already imported through it stays, exactly as the sound/complete
    envelopes of Definition 9 anticipate.
    """
    if isinstance(operation, AddLink):
        system.add_rule(operation.rule, trigger_update=True)
    elif isinstance(operation, DeleteLink):
        rule = system.registry.get(operation.rule_id)
        if rule.target != operation.target or operation.source not in rule.sources:
            raise ChangeError(
                f"deleteLink({operation.target}, {operation.source}, "
                f"{operation.rule_id}) does not match the registered rule {rule}"
            )
        system.remove_rule(operation.rule_id)
    else:  # pragma: no cover - defensive
        raise ChangeError(f"unknown change operation {operation!r}")


def apply_change_interleaved(
    system: P2PSystem,
    change: NetworkChange,
    *,
    steps_between: int = 5,
) -> float:
    """Interleave a change with a running update on a synchronous transport.

    The update must already have been started (e.g. by triggering
    ``update.start`` on the origins).  Between two consecutive atomic
    operations the transport delivers ``steps_between`` messages, so the
    change genuinely races with the protocol; after the last operation the
    network runs to quiescence.  Returns the simulated completion time.
    """
    transport = system.transport
    for operation in change:
        for _ in range(steps_between):
            if transport.step() is None:  # type: ignore[attr-defined]
                break
        apply_change_operation(system, operation)
    return transport.run()  # type: ignore[attr-defined]


# --------------------------------------------------------------------- envelopes


def sound_envelope(
    schemas: SchemaSpec,
    initial_rules: Iterable[CoordinationRule],
    change: NetworkChange,
    data: DataSpec | None,
) -> Snapshot:
    """Definition 9.1 reference: all ``addLink`` first, no ``deleteLink``."""
    rules = list(initial_rules) + change.added_rules
    return centralized_update(schemas, rules, data).snapshot()


def complete_envelope(
    schemas: SchemaSpec,
    initial_rules: Iterable[CoordinationRule],
    change: NetworkChange,
    data: DataSpec | None,
) -> Snapshot:
    """Definition 9.2 reference: all ``deleteLink`` first, no ``addLink``."""
    deleted = set(change.deleted_rule_ids)
    rules = [rule for rule in initial_rules if rule.rule_id not in deleted]
    return centralized_update(schemas, rules, data).snapshot()


def _ground_rows(rows: Iterable[Row]) -> frozenset[Row]:
    """Keep only rows without labelled nulls.

    Rows containing invented nulls are witness tuples for existential
    variables; their labels depend on which rule fired first, so the
    containment checks of Definition 9 are made on the ground (null-free)
    part of each relation.
    """
    return frozenset(
        row for row in rows if not any(is_null(value) for value in row)
    )


def is_sound_answer(measured: Snapshot, envelope: Snapshot) -> bool:
    """True when every measured ground row is allowed by the sound envelope."""
    for node_id, relations in measured.items():
        reference = envelope.get(node_id, {})
        for relation_name, rows in relations.items():
            allowed = _ground_rows(reference.get(relation_name, frozenset()))
            if not _ground_rows(rows) <= allowed:
                return False
    return True


def is_complete_answer(measured: Snapshot, envelope: Snapshot) -> bool:
    """True when the measured result contains every row of the complete envelope."""
    for node_id, relations in envelope.items():
        observed = measured.get(node_id, {})
        for relation_name, rows in relations.items():
            required = _ground_rows(observed.get(relation_name, frozenset()))
            if not _ground_rows(rows) <= required:
                return False
    return True


# -------------------------------------------------------------------- separation


def is_separated_under_change(
    nodes: Iterable[NodeId],
    others: Iterable[NodeId],
    initial_rules: Iterable[CoordinationRule],
    change: NetworkChange,
) -> bool:
    """Definition 10.2: separation with respect to every prefix of a change.

    The check applies every initial prefix of ``change`` to the rule set and
    verifies that no dependency path from ``nodes`` reaches ``others`` in any
    of the resulting networks.
    """
    nodes = list(nodes)
    others = list(others)
    initial_rules = list(initial_rules)
    for length in range(len(change) + 1):
        prefix = change.initial_subchange(length)
        deleted = set(prefix.deleted_rule_ids)
        rules = [r for r in initial_rules if r.rule_id not in deleted]
        rules.extend(prefix.added_rules)
        graph = DependencyGraph.from_rules(rules, nodes=[*nodes, *others])
        if not is_separated(graph, nodes, others):
            return False
    return True
