"""Per-node protocol state (the data structures listed in Section 3).

The paper equips every node with:

* ``state_d`` — discovery state: undefined, ``discovery`` or ``closed``,
* ``state_u`` — update state: ``open`` or ``closed``,
* ``finished`` — whether network discovery *through* this node is finished,
* ``Rules(rule, node, flag)`` — the coordination rules targeting the node,
* ``Paths(path, flag, closed)`` — the node's maximal dependency paths,
* ``Edges(source, target)`` — dependency edges known so far,
* ``owner`` — pairs (requesting node, node on whose behalf the request runs).

This module holds those structures in dataclasses so the protocol code in
:mod:`repro.core.discovery` and :mod:`repro.core.update` stays readable and
the tests can inspect every flag the paper mentions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.coordination.rule import NodeId

Path = tuple[NodeId, ...]
Edge = tuple[NodeId, NodeId]


class DiscoveryState(str, Enum):
    """The paper's ``state_d``: knowledge about the network topology."""

    UNDEFINED = "undefined"
    DISCOVERY = "discovery"
    CLOSED = "closed"


class UpdateState(str, Enum):
    """The paper's ``state_u``: status of the data at a node."""

    OPEN = "open"
    CLOSED = "closed"


@dataclass
class RuleFlags:
    """Per-rule bookkeeping used by both protocol phases.

    ``flag`` is the paper's Rules.flag (the branch reported a *closed* state);
    ``finished`` mirrors the per-branch "discovery finished" indicator; the
    update phase uses ``complete_sources`` to remember which source nodes have
    reported a complete fragment.
    """

    flag: bool = False
    finished: bool = False
    complete_sources: set[NodeId] = field(default_factory=set)


@dataclass
class PathFlags:
    """Per-path bookkeeping of the update phase (Paths.flag / Paths.closed)."""

    no_new_data: bool = False
    closed: bool = False


@dataclass
class OwnerEntry:
    """One entry of the paper's ``owner`` array.

    ``requester`` is the node that sent the request (may be ``None`` for the
    entry a super-peer records about itself), ``origin`` is the node on whose
    behalf the request is made, and ``rule_id`` (update phase only) is the
    rule through which the requester imports data from this node.
    """

    requester: NodeId | None
    origin: NodeId
    rule_id: str | None = None


@dataclass
class NodeState:
    """The complete mutable protocol state of one peer."""

    # -- discovery phase -----------------------------------------------------
    state_d: DiscoveryState = DiscoveryState.UNDEFINED
    finished: bool = False
    edges: set[Edge] = field(default_factory=set)
    paths: dict[Path, PathFlags] = field(default_factory=dict)
    discovery_owner: list[OwnerEntry] = field(default_factory=list)
    origins_seen: set[NodeId] = field(default_factory=set)
    branch_state_closed: dict[NodeId, bool] = field(default_factory=dict)
    branch_finished: dict[NodeId, bool] = field(default_factory=dict)

    # -- update phase --------------------------------------------------------
    state_u: UpdateState = UpdateState.OPEN
    rule_flags: dict[str, RuleFlags] = field(default_factory=dict)
    update_owner: list[OwnerEntry] = field(default_factory=list)
    fragments: dict[tuple[str, NodeId], frozenset[tuple]] = field(default_factory=dict)
    update_paths: dict[Path, PathFlags] = field(default_factory=dict)
    queried_paths: set[Path] = field(default_factory=set)
    update_started: bool = False
    # Pull-round bookkeeping: the (rule, source) answers the current round is
    # still waiting for, whether the round imported anything new, whether
    # another round was requested while one was running, and a counter.
    pending_answers: set[tuple[str, NodeId]] = field(default_factory=set)
    round_dirty: bool = False
    rerun_requested: bool = False
    rounds_completed: int = 0
    # Last fragment pushed to each (rule, requester) pair; pushes whose
    # fragment did not change since are suppressed (delta optimisation).
    pushed_fragments: dict[tuple[str, NodeId], frozenset[tuple]] = field(
        default_factory=dict
    )
    # -- incremental (delta-driven) update bookkeeping -----------------------
    # Rows inserted into this node's database since the last naive run, in
    # insertion order: base-data inserts seeded by a sync plus every row the
    # incremental chase derived here.  ``fragment_cache`` holds each outgoing
    # rule's last fully-evaluated fragment and ``fragment_mark`` the log
    # length it was computed at, so a fragment refresh only has to join the
    # log suffix (semi-naive) instead of re-evaluating over the whole
    # database.  All three are cleared by any naive run (see
    # UpdateProtocol.invalidate_incremental).
    delta_log: list[tuple[str, tuple]] = field(default_factory=list)
    fragment_cache: dict[str, frozenset[tuple]] = field(default_factory=dict)
    fragment_mark: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ reset

    def reset_discovery(self) -> None:
        """Forget every discovery-phase datum (super-peer RESET)."""
        self.state_d = DiscoveryState.UNDEFINED
        self.finished = False
        self.edges.clear()
        self.paths.clear()
        self.discovery_owner.clear()
        self.origins_seen.clear()
        self.branch_state_closed.clear()
        self.branch_finished.clear()

    def reset_update(self) -> None:
        """Forget every update-phase datum (local data itself is kept)."""
        self.state_u = UpdateState.OPEN
        self.rule_flags.clear()
        self.update_owner.clear()
        self.fragments.clear()
        self.update_paths.clear()
        self.queried_paths.clear()
        self.update_started = False
        self.pending_answers.clear()
        self.round_dirty = False
        self.rerun_requested = False
        self.rounds_completed = 0
        self.pushed_fragments.clear()
        self.delta_log.clear()
        self.fragment_cache.clear()
        self.fragment_mark.clear()

    # ------------------------------------------------------------- inspection

    def has_discovery_owner(self, requester: NodeId | None, origin: NodeId) -> bool:
        """True if an identical (requester, origin) pair is already recorded."""
        return any(
            entry.requester == requester and entry.origin == origin
            for entry in self.discovery_owner
        )

    def has_update_owner(self, requester: NodeId, rule_id: str) -> bool:
        """True if ``requester`` already registered interest through ``rule_id``."""
        return any(
            entry.requester == requester and entry.rule_id == rule_id
            for entry in self.update_owner
        )

    def maximal_paths(self) -> list[Path]:
        """The node's maximal dependency paths as recorded in ``paths``."""
        return sorted(self.paths)
