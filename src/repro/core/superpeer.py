"""The super-peer role (Section 5 of the paper).

A super-peer "does not have any other property differentiating it from other
nodes": it is an ordinary peer that additionally

* selects itself (or is selected) to initiate topology discovery,
* can read the coordination rules for all peers from a file and broadcast
  them, letting one peer change the network topology at run time — "extremely
  convenient for running multiple experiments on different topologies",
* starts global update requests,
* commands other peers to report or reset their statistics.

:class:`SuperPeer` wraps a :class:`~repro.core.system.P2PSystem` and provides
exactly those operations, including a tiny rule-file format so experiments can
be described declaratively.
"""

from __future__ import annotations

from typing import Iterable

from repro.coordination.rule import CoordinationRule, NodeId, rule_from_text
from repro.core.system import P2PSystem
from repro.stats.collector import StatsSnapshot


class SuperPeer:
    """Experiment-control operations bound to one designated peer."""

    def __init__(self, system: P2PSystem, node_id: NodeId | None = None):
        self.system = system
        self.node_id = node_id if node_id is not None else system.super_peer
        system.super_peer = self.node_id

    # ------------------------------------------------------------ rule files

    @staticmethod
    def parse_rule_file(text: str) -> list[CoordinationRule]:
        """Parse a rule file: one ``rule_id: body -> target`` rule per line.

        Blank lines and lines starting with ``#`` are ignored.  The rule id is
        everything before the first ``:`` whose remainder parses as a rule.
        """
        rules = []
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            rule_id, _, remainder = line.partition(":")
            rules.append(rule_from_text(rule_id.strip(), remainder.strip()))
        return rules

    def broadcast_rules(self, rules: Iterable[CoordinationRule] | str) -> int:
        """Install a batch of rules network-wide (the rule-file broadcast).

        ``rules`` may be an iterable of rules or the text of a rule file.
        Rules already installed (same id) are skipped, so re-broadcasting an
        extended file only adds the new rules.  Returns how many rules were
        installed.
        """
        if isinstance(rules, str):
            rules = self.parse_rule_file(rules)
        installed = 0
        for rule in rules:
            if rule.rule_id in self.system.registry:
                continue
            self.system.add_rule(rule)
            installed += 1
        return installed

    # ------------------------------------------------------------- protocols

    def run_discovery(self) -> float:
        """Initiate topology discovery from the super-peer and run to quiescence."""
        from repro.api.engine import engine_for

        engine = engine_for(self.system.transport)
        completion, _snapshot = engine.run(self.system, "discovery", [self.node_id])
        return completion

    def run_global_update(self, *, everywhere: bool = True) -> float:
        """Send the global update request and run the network to quiescence.

        With ``everywhere=True`` (the default, and what the experiments use)
        every node starts importing its data; with ``everywhere=False`` only
        the super-peer's own dependency closure is updated.
        """
        from repro.api.engine import engine_for

        origins = None if everywhere else [self.node_id]
        engine = engine_for(self.system.transport)
        completion, _snapshot = engine.run(self.system, "update", origins)
        return completion

    # ------------------------------------------------------------- statistics

    def collect_statistics(self) -> StatsSnapshot:
        """The super-peer's "send me your statistics" command."""
        return self.system.snapshot_stats()

    def reset_statistics(self) -> None:
        """The super-peer's "reset statistics at all peers" command."""
        self.system.reset_statistics()

    def reset_protocol_state(self, *, clear_data: bool = False) -> None:
        """Reset every node's protocol state (and optionally its data) directly."""
        for node in self.system.nodes.values():
            node.state.reset_discovery()
            node.state.reset_update()
            if clear_data:
                node.database.clear()

    def __repr__(self) -> str:
        return f"SuperPeer({self.node_id!r})"
