"""Fix-point and quiescence checks (Lemma 1 support).

The distributed update has reached its fix-point when no node can import any
further tuple through any coordination rule.  These helpers verify that
property from the outside:

* :func:`all_nodes_closed` — every node's ``state_u`` flag is ``closed``
  (the paper's per-node fix-point indicator),
* :func:`satisfies_all_rules` — the *semantic* fix-point: applying any rule to
  the current network contents adds nothing (checked with the same chase step
  the engine uses),
* :func:`verify_against_centralized` — the distributed result coincides with
  the centralized reference on the ground (null-free) part of every relation,
  and is closed under the rules; this is the soundness-and-completeness check
  used throughout the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.baselines.centralized import centralized_update
from repro.coordination.rule import CoordinationRule, NodeId
from repro.core.system import P2PSystem
from repro.core.update import fragment_for, join_fragments
from repro.database.nulls import is_null
from repro.database.relation import Row

Snapshot = Mapping[NodeId, Mapping[str, frozenset[Row]]]


def all_nodes_closed(system: P2PSystem) -> bool:
    """True when every node of the system reports ``state_u == closed``."""
    return all(node.is_update_closed for node in system.nodes.values())


def satisfies_all_rules(system: P2PSystem) -> bool:
    """True when no rule application can add a tuple anywhere (semantic fix-point)."""
    for rule in system.registry:
        fragments = {
            source: fragment_for(system.node(source).database, rule, source)
            for source in rule.sources
        }
        answers = join_fragments(rule, fragments)
        target_db = system.node(rule.target).database.copy()
        inserted = target_db.apply_view_tuples(
            rule.rule_id, rule.head, rule.distinguished_variables, answers
        )
        if inserted:
            return False
    return True


def ground_part(snapshot: Snapshot) -> dict[NodeId, dict[str, frozenset[Row]]]:
    """Drop every row containing a labelled null from a snapshot."""
    return {
        node_id: {
            relation: frozenset(
                row for row in rows if not any(is_null(value) for value in row)
            )
            for relation, rows in relations.items()
        }
        for node_id, relations in snapshot.items()
    }


@dataclass(frozen=True)
class VerificationReport:
    """Result of comparing a distributed run with the centralized reference."""

    ground_equal: bool
    rules_satisfied: bool
    missing: dict[NodeId, dict[str, frozenset[Row]]]
    extra: dict[NodeId, dict[str, frozenset[Row]]]

    @property
    def ok(self) -> bool:
        """True when the distributed result is sound and complete."""
        return self.ground_equal and self.rules_satisfied


def verify_against_centralized(
    system: P2PSystem,
    schemas: Mapping[NodeId, Iterable],
    rules: Iterable[CoordinationRule],
    initial_data: Mapping[NodeId, Mapping[str, Iterable[Row]]] | None,
) -> VerificationReport:
    """Compare the system's databases with the centralized fix-point.

    Ground (null-free) tuples must match exactly; tuples with invented nulls
    are compared only through :func:`satisfies_all_rules`, because the labels
    of the nulls — and, with existential cycles, even their number — depend on
    the order in which rules fire.
    """
    reference = centralized_update(schemas, list(rules), initial_data).snapshot()
    measured = system.databases()

    reference_ground = ground_part(reference)
    measured_ground = ground_part(measured)

    missing: dict[NodeId, dict[str, frozenset[Row]]] = {}
    extra: dict[NodeId, dict[str, frozenset[Row]]] = {}
    for node_id in reference_ground.keys() | measured_ground.keys():
        for relation in (
            reference_ground.get(node_id, {}).keys()
            | measured_ground.get(node_id, {}).keys()
        ):
            expected = reference_ground.get(node_id, {}).get(relation, frozenset())
            observed = measured_ground.get(node_id, {}).get(relation, frozenset())
            if expected - observed:
                missing.setdefault(node_id, {})[relation] = expected - observed
            if observed - expected:
                extra.setdefault(node_id, {})[relation] = observed - expected

    return VerificationReport(
        ground_equal=not missing and not extra,
        rules_satisfied=satisfies_all_rules(system),
        missing=missing,
        extra=extra,
    )
