"""The whole P2P database network: nodes, rules, pipes and transport.

:class:`P2PSystem` is the state-holding substrate of the library.  It owns the
rule registry, builds one :class:`~repro.core.node.PeerNode` per participating
peer, wires every rule to its target (incoming) and source (outgoing) nodes,
opens the pipes the prototype would open, and applies dynamic-network changes.
*Execution* lives one layer up: open a :class:`repro.api.Session` on the
system (or build one with :class:`repro.api.NetworkBuilder` /
:meth:`repro.api.Session.from_spec`) and call ``session.run("discovery")`` /
``session.update(strategy=...)``.  The ``run_*`` methods still present here
are deprecated shims kept for pre-façade callers.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Mapping

from repro.coordination.changeset import ChangeSet, StructuralDigest, digest_system
from repro.coordination.depgraph import DependencyGraph
from repro.coordination.registry import RuleRegistry
from repro.coordination.rule import CoordinationRule, NodeId
from repro.core.node import PeerNode
from repro.database.database import LocalDatabase
from repro.database.query import ConjunctiveQuery
from repro.database.relation import Row
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.errors import ReproError
from repro.network.advertisement import Advertisement, DiscoveryService
from repro.network.latency import LatencyModel
from repro.network.pipe import PipeTable
from repro.network.transport import AsyncTransport, BaseTransport, SyncTransport
from repro.stats.collector import StatisticsCollector, StatsSnapshot

SchemaSpec = Mapping[NodeId, DatabaseSchema | Iterable[RelationSchema]]
DataSpec = Mapping[NodeId, Mapping[str, Iterable[Row]]]


class P2PSystem:
    """A complete P2P database network over a single simulated transport."""

    def __init__(
        self,
        transport: BaseTransport,
        super_peer: NodeId | None = None,
    ):
        self.transport = transport
        self.stats: StatisticsCollector = transport.stats
        #: Span tracer attached by a traced Session; None means tracing off
        #: (engines resolve this via repro.obs.tracer_of).
        self.tracer = None
        #: Fault injector attached by a chaos Session; None means no faults
        #: (engines resolve this via repro.faults.injector_of).
        self.fault_injector = None
        self.registry = RuleRegistry()
        self.nodes: dict[NodeId, PeerNode] = {}
        self.pipes = PipeTable()
        self.discovery_service = DiscoveryService()
        self._super_peer = super_peer

    # -------------------------------------------------------------- building

    @classmethod
    def build(
        cls,
        schemas: SchemaSpec,
        rules: Iterable[CoordinationRule] = (),
        data: DataSpec | None = None,
        *,
        transport: str | BaseTransport = "sync",
        latency: LatencyModel | None = None,
        propagation: str = "once",
        super_peer: NodeId | None = None,
        max_messages: int = 1_000_000,
        shards: int | None = None,
        pool: bool = False,
        hosts: Iterable[str] | None = None,
    ) -> "P2PSystem":
        """Build a system from per-node schemas, rules and initial data.

        ``transport`` is either an existing transport instance or the string
        ``"sync"`` / ``"async"`` / ``"sharded"`` / ``"multiproc"`` /
        ``"pooled"`` / ``"socket"``; ``shards`` sets the shard count of the
        partitioned transports (default 2, ignored otherwise); ``pool=True``
        upgrades the ``"multiproc"`` transport to the persistent worker pool
        (equivalent to ``transport="pooled"``) and the ``"socket"`` transport
        to the warm socket pool; ``hosts`` lists the ``"HOST:PORT"``
        shard-host addresses of the ``"socket"`` transport (``None``
        auto-spawns localhost hosts, and the shard count defaults to one per
        host); ``propagation`` selects the query propagation policy of every
        node (see :mod:`repro.core.update`).
        """
        if isinstance(transport, BaseTransport):
            transport_obj = transport
        elif transport == "sync":
            transport_obj = SyncTransport(latency=latency, max_messages=max_messages)
        elif transport == "async":
            transport_obj = AsyncTransport(latency=latency, max_messages=max_messages)
        elif transport == "sharded":
            from repro.sharding.transport import ShardedTransport

            transport_obj = ShardedTransport(
                shard_count=shards if shards is not None else 2,
                latency=latency,
                max_messages=max_messages,
            )
        elif transport in ("multiproc", "pooled"):
            from repro.sharding.multiproc import MultiprocTransport
            from repro.sharding.pool import PooledTransport

            transport_cls = (
                PooledTransport
                if pool or transport == "pooled"
                else MultiprocTransport
            )
            transport_obj = transport_cls(
                shard_count=shards if shards is not None else 2,
                latency=latency,
                max_messages=max_messages,
            )
        elif transport == "socket":
            from repro.sharding.sockets import PooledSocketTransport, SocketTransport

            socket_cls = PooledSocketTransport if pool else SocketTransport
            transport_obj = socket_cls(
                shard_count=shards,
                hosts=tuple(hosts) if hosts else None,
                latency=latency,
                max_messages=max_messages,
            )
        else:
            raise ReproError(f"unknown transport kind {transport!r}")
        if hosts and not isinstance(transport, str):
            raise ReproError(
                "hosts= only applies when the transport is built here; "
                "pass them to the SocketTransport instance instead"
            )
        if hosts and isinstance(transport, str) and transport != "socket":
            raise ReproError(f"hosts= needs transport='socket', not {transport!r}")

        system = cls(transport_obj, super_peer=super_peer)
        for node_id, schema in schemas.items():
            system.add_node(node_id, schema, propagation=propagation)
        for rule in rules:
            system.add_rule(rule)
        if data:
            system.load_data(data)
        return system

    def add_node(
        self,
        node_id: NodeId,
        schema: DatabaseSchema | Iterable[RelationSchema],
        *,
        propagation: str = "once",
    ) -> PeerNode:
        """Create and register a peer with the given shared schema."""
        if node_id in self.nodes:
            raise ReproError(f"node {node_id!r} already exists")
        if not isinstance(schema, DatabaseSchema):
            schema = DatabaseSchema(schema)
        database = LocalDatabase(schema)
        node = PeerNode(
            node_id,
            database,
            self.transport,
            stats=self.stats,
            propagation=propagation,
        )
        self.nodes[node_id] = node
        self.discovery_service.publish(
            Advertisement(peer_id=node_id, shared_relations=schema.relation_names)
        )
        return node

    def add_rule(self, rule: CoordinationRule, *, trigger_update: bool = False) -> None:
        """Install a coordination rule on its target and source nodes.

        With ``trigger_update=True`` the target node immediately queries the
        rule's sources (used by the dynamic ``addLink`` operation when an
        update is already under way).
        """
        for mentioned in (rule.target, *rule.sources):
            if mentioned not in self.nodes:
                raise ReproError(
                    f"rule {rule.rule_id!r} mentions unknown node {mentioned!r}"
                )
        self.registry.add(rule)
        target = self.nodes[rule.target]
        target.add_incoming_rule(rule)
        for source in rule.sources:
            self.nodes[source].add_outgoing_rule(rule)
            self.pipes.ensure_pipe(rule.target, source, rule.rule_id)
        if trigger_update:
            target.update.request_rule(rule)

    def remove_rule(self, rule_id: str) -> CoordinationRule:
        """Uninstall a coordination rule everywhere (pipes close when unused)."""
        rule = self.registry.remove(rule_id)
        self.nodes[rule.target].remove_incoming_rule(rule_id)
        for source in rule.sources:
            if source in self.nodes:
                self.nodes[source].remove_outgoing_rule(rule_id)
            self.pipes.drop_rule(rule.target, source, rule_id)
        return rule

    def load_data(self, data: DataSpec) -> None:
        """Bulk-load initial rows into the nodes' local databases."""
        for node_id, relations in data.items():
            node = self.node(node_id)
            for relation_name, rows in relations.items():
                node.database.insert_many(relation_name, rows)

    def structural_digest(self) -> StructuralDigest:
        """One hashable digest of the rule set and every relation's contents.

        This is the single structural fingerprint shared by the
        ``Session.update`` strategy-memo cache and the warm pools'
        :class:`~repro.sharding.pool.WorldMirror`: equal digests mean the
        same rules and the same rows everywhere, and any ``addLink`` /
        ``deleteLink`` / insertion changes it by construction.
        """
        return digest_system(self)

    def seed_update_delta(
        self, changes: ChangeSet, *, nodes: Iterable[NodeId] | None = None
    ) -> int:
        """Start the incremental update at every node ``changes`` touched.

        The delta-driven counterpart of starting a naive update at every
        origin: each node with inserted base rows seeds its delta frontier
        and pushes semi-naive fragment deltas to its registered dependants
        (see :meth:`repro.core.update.UpdateProtocol.start_incremental`).
        ``nodes`` restricts seeding (the shard workers pass their owned
        peers).  Returns the number of nodes seeded.
        """
        allowed = None if nodes is None else set(nodes)
        seeded = 0
        for node_id, relations in sorted(changes.inserts.items()):
            if allowed is not None and node_id not in allowed:
                continue
            if node_id not in self.nodes:
                continue
            self.nodes[node_id].update.start_incremental(relations)
            seeded += 1
        return seeded

    # ------------------------------------------------------------- properties

    @property
    def super_peer(self) -> NodeId:
        """The designated super-peer (defaults to the smallest node id)."""
        if self._super_peer is not None:
            return self._super_peer
        if not self.nodes:
            raise ReproError("the system has no nodes")
        return min(self.nodes)

    @super_peer.setter
    def super_peer(self, node_id: NodeId) -> None:
        if node_id not in self.nodes:
            raise ReproError(f"unknown node {node_id!r}")
        self._super_peer = node_id

    def dependency_graph(self) -> DependencyGraph:
        """The dependency graph of the current rule set."""
        return self.registry.dependency_graph(nodes=self.nodes)

    def node(self, node_id: NodeId) -> PeerNode:
        """The peer named ``node_id``."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise ReproError(f"unknown node {node_id!r}") from None

    # ------------------------------------------- protocols (deprecated shims)
    #
    # The execution logic lives in repro.api.engine; P2PSystem is the
    # state-holding substrate.  These four methods remain as thin shims for
    # pre-façade callers and will be removed in a future release.

    def _deprecated(self, old: str, new: str) -> None:
        warnings.warn(
            f"P2PSystem.{old} is deprecated; use {new} "
            "(see repro.api.Session)",
            DeprecationWarning,
            stacklevel=3,
        )

    def run_discovery(self, origins: Iterable[NodeId] | None = None) -> float:
        """Deprecated: use ``Session.run("discovery")``.

        Runs topology discovery to quiescence on the synchronous transport and
        returns the simulated completion time.
        """
        from repro.api.engine import SyncEngine

        self._deprecated("run_discovery", 'Session.run("discovery")')
        completion, _snapshot = SyncEngine().run(self, "discovery", origins)
        return completion

    def run_global_update(self, origins: Iterable[NodeId] | None = None) -> float:
        """Deprecated: use ``Session.run("update")`` or ``Session.update()``.

        Runs the distributed update to quiescence on the synchronous transport
        and returns the simulated completion time.
        """
        from repro.api.engine import SyncEngine

        self._deprecated("run_global_update", 'Session.run("update")')
        completion, _snapshot = SyncEngine().run(self, "update", origins)
        return completion

    async def run_discovery_async(
        self, origins: Iterable[NodeId] | None = None
    ) -> StatsSnapshot:
        """Deprecated: use ``await Session.run_async("discovery")``."""
        from repro.api.engine import AsyncEngine

        self._deprecated("run_discovery_async", 'Session.run_async("discovery")')
        _completion, snapshot = await AsyncEngine().run_async(
            self, "discovery", origins
        )
        return snapshot

    async def run_global_update_async(
        self, origins: Iterable[NodeId] | None = None
    ) -> StatsSnapshot:
        """Deprecated: use ``await Session.run_async("update")``."""
        from repro.api.engine import AsyncEngine

        self._deprecated("run_global_update_async", 'Session.run_async("update")')
        _completion, snapshot = await AsyncEngine().run_async(self, "update", origins)
        return snapshot

    # ----------------------------------------------------------------- queries

    def local_query(self, node_id: NodeId, query: ConjunctiveQuery) -> set[tuple]:
        """Answer ``query`` using only ``node_id``'s local data."""
        return self.node(node_id).local_query(query)

    def databases(self) -> dict[NodeId, dict[str, frozenset[Row]]]:
        """A snapshot of every node's relations (used by tests and experiments)."""
        return {node_id: node.database.facts() for node_id, node in self.nodes.items()}

    def snapshot_stats(self) -> StatsSnapshot:
        """The current statistics snapshot."""
        return self.stats.snapshot()

    def reset_statistics(self) -> None:
        """Reset all counters (the super-peer's reset command)."""
        self.stats.reset()

    def __repr__(self) -> str:
        return (
            f"P2PSystem({len(self.nodes)} nodes, {len(self.registry)} rules, "
            f"transport={type(self.transport).__name__})"
        )
