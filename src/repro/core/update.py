"""The distributed database update (algorithms A4–A6 of the paper).

The update phase propagates, through the coordination rules, every piece of
data a node is entitled to import, so that later queries can be answered
locally.  The message flow per node is:

* ``start`` — triggered by the super-peer's global update request (or by a
  query-dependent update): the node sends a ``Query`` for every coordination
  rule targeting it to each of the rule's source nodes, with the path ``[me]``.
* ``Query`` (A4) — a source node receiving a query records the requester in
  its ``owner`` table, evaluates the requested body fragment on its local
  database, answers immediately, and — if it is not already on the query's
  path (loop detection) — forwards queries for its *own* rules to its own
  sources with the extended path.
* ``Answer`` (A5) — the head node stores the received fragment, recomputes the
  rule (joining fragments when the body spans several sources), applies the
  result to its local database via the chase step, flags the path as carrying
  new data or not, and — when its database actually changed — pushes fresh
  answers to every node that registered as an owner (dependants importing data
  from it).
* ``UpdateLocalData`` (A6) — implemented by
  :meth:`repro.database.database.LocalDatabase.apply_view_tuples`: head facts
  are inserted unless a row matching them on every non-existential position is
  already present; existential positions receive deterministic labelled nulls.

Fix-point (Lemma 1): a result set stops propagating when (a) the node is
already on the path it travelled and (b) it brings no new data.  A node's
``state_u`` becomes ``closed`` when either every incoming rule has reported
complete fragments from all of its sources, or every path seen so far brought
no new data — the two (disjunctive) conditions in the paper's ``Answer``
pseudo-code.  When a node closes it notifies its dependants once, so closure
propagates through acyclic parts of the network.

Propagation policy
------------------
The literal algorithm re-propagates a query along every distinct dependency
path (the statistics module of the prototype even counts the resulting
duplicate queries).  On a clique the number of simple paths is factorial in
the node count, so the faithful policy is only usable on small networks.  The
node therefore supports two policies (see DESIGN.md):

* ``"per_path"`` — faithful to the pseudo-code; a node forwards queries once
  per distinct path it is reached through,
* ``"once"`` — the "delta optimisation" the paper alludes to: a node forwards
  its queries only the first time it is reached in an update run.  The
  owners-push mechanism still delivers every later data change, so the final
  fix-point is identical; only the number of (duplicate) messages differs.

Incremental (delta-driven) mode
-------------------------------
On top of the naive pull rounds, the protocol supports an *incremental* mode
used by the warm engines for repeat runs whose only change since the last
converged run is row insertion (see ``docs/incremental.md``).  No queries are
sent at all: a node whose base data changed calls :meth:`start_incremental`,
which logs the inserted rows and pushes semi-naive fragment *deltas* to the
dependants already registered in its ``owner`` table by the previous run.  A
receiver handles such an answer (payload flag ``incremental``) by joining
only the fresh rows against its cached fragments
(:func:`join_fragments` with a delta source), applying the result through
the same A6 chase step, and cascading its own incremental pushes when rows
were actually inserted.  Nodes stay ``closed`` throughout — the previous
run's fix-point plus the monotone delta propagation is the new fix-point
(Lemma 1), and quiescence is detected by the engines' existing barriers.
The mode changes *work*, never *results*: deterministic labelled nulls make
the final databases bit-identical to a naive re-run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from repro.coordination.rule import CoordinationRule, NodeId
from repro.core.state import OwnerEntry, PathFlags, RuleFlags, UpdateState
from repro.database.evaluate import evaluate_body, evaluate_body_delta
from repro.database.query import Constant, Variable
from repro.network.message import Message, MessageType

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import PeerNode

Fragment = frozenset[tuple]

#: Supported propagation policies.
PROPAGATION_POLICIES = ("once", "per_path")


def fragment_variables(rule: CoordinationRule, source: NodeId) -> tuple[Variable, ...]:
    """The column order of the fragment a source node returns for ``rule``."""
    return rule.body_query_for(source).body_variables


def fragment_for(database, rule: CoordinationRule, node_id: NodeId) -> Fragment:
    """Evaluate the part of ``rule``'s body stored at ``node_id`` over ``database``.

    The result is a set of tuples over :func:`fragment_variables` order; the
    head node joins fragments from every source before projecting onto the
    rule's distinguished variables.  This function is shared with the
    centralized baseline, which evaluates the same fragments without any
    message exchange.
    """
    query = rule.body_query_for(node_id)
    variables = query.body_variables
    answers = set()
    for binding in evaluate_body(database, query):
        answers.add(tuple(binding[variable] for variable in variables))
    return frozenset(answers)


def evaluate_fragment(node: "PeerNode", rule: CoordinationRule) -> Fragment:
    """Evaluate the part of ``rule``'s body stored at ``node`` (a peer)."""
    return fragment_for(node.database, rule, node.node_id)


def fragment_delta_for(
    database,
    rule: CoordinationRule,
    node_id: NodeId,
    delta: Mapping[str, Iterable[tuple]],
) -> Fragment:
    """Semi-naive fragment refresh: rows of the fragment that touch ``delta``.

    ``delta`` maps relation names to rows recently inserted into
    ``database``.  The result is a *subset* of :func:`fragment_for` — every
    fragment row whose derivation uses at least one delta row — so a cached
    fragment unioned with this delta equals the full re-evaluation, at cost
    proportional to the delta.
    """
    query = rule.body_query_for(node_id)
    variables = query.body_variables
    answers = set()
    for binding in evaluate_body_delta(database, query, delta):
        answers.add(tuple(binding[variable] for variable in variables))
    return frozenset(answers)


def join_fragments(
    rule: CoordinationRule,
    fragments: Mapping[NodeId, Iterable[tuple]],
    *,
    delta_source: NodeId | None = None,
    delta_rows: Iterable[tuple] | None = None,
) -> set[tuple]:
    """Join per-source fragments and project onto the distinguished variables.

    Returns the set of answer tuples (one per firing) ordered like
    ``rule.distinguished_variables``.  Sources with no fragment yet make the
    result empty — the rule simply cannot fire until every source answered at
    least once.

    With ``delta_source``/``delta_rows`` the join is *semi-naive*: the delta
    source is joined first and restricted to ``delta_rows`` (the rows of its
    fragment that are new), so only firings that use at least one new row are
    produced — the firings over the old rows were already computed when they
    arrived.
    """
    sources = list(rule.sources)
    for source in sources:
        if source not in fragments:
            return set()
    if delta_source is not None:
        if delta_source not in sources:
            return set()
        # Stable reorder: the delta source first, the rest in rule order.
        sources.sort(key=lambda source: source != delta_source)

    bindings: list[dict[Variable, object]] = [{}]
    for source in sources:
        variables = fragment_variables(rule, source)
        if delta_source is not None and source == delta_source:
            fragment_rows: Iterable[tuple] = (
                delta_rows if delta_rows is not None else fragments[source]
            )
        else:
            fragment_rows = fragments[source]
        new_bindings: list[dict[Variable, object]] = []
        for binding in bindings:
            for row in fragment_rows:
                candidate = dict(binding)
                consistent = True
                for variable, value in zip(variables, row):
                    known = candidate.get(variable, _UNBOUND)
                    if known is _UNBOUND:
                        candidate[variable] = value
                    elif known != value:
                        consistent = False
                        break
                if consistent:
                    new_bindings.append(candidate)
        bindings = new_bindings
        if not bindings:
            return set()

    answers: set[tuple] = set()
    distinguished = rule.distinguished_variables
    for binding in bindings:
        if not _comparisons_hold(rule, binding):
            continue
        answers.add(tuple(binding[variable] for variable in distinguished))
    return answers


_UNBOUND = object()


def _comparisons_hold(
    rule: CoordinationRule, binding: Mapping[Variable, object]
) -> bool:
    """Check the rule's built-in predicates against a complete binding."""
    for comparison in rule.comparisons:
        operands = []
        for term in (comparison.left, comparison.right):
            if isinstance(term, Constant):
                operands.append(term.value)
            else:
                if term not in binding:
                    return False
                operands.append(binding[term])
        if not comparison.evaluate(operands[0], operands[1]):
            return False
    return True


class UpdateProtocol:
    """The update-phase behaviour of one peer node.

    Convergence and local fix-point detection are organised around *pull
    rounds*: a round sends one ``Query`` per (incoming rule, source node) and
    waits for the matching answers; when the round completes without having
    imported a single new tuple, the node has reached its fix-point and closes
    (``state_u = closed``); when it did import something, another round is
    started — the paper's "the update algorithm has to continue the
    computation until a fix-point is reached".  Pushed answers from sources
    whose data changed later re-open a closed node and trigger a new round, so
    the global fix-point is reached and every node ends up closed (Lemma 1).
    """

    def __init__(self, node: "PeerNode"):
        self.node = node

    # ---------------------------------------------------------------- start

    def start(self, path: tuple[NodeId, ...] = ()) -> None:
        """Begin the update at this node (global update request).

        ``path`` is the sequence of nodes the triggering request travelled
        through; the node's own queries extend it with its identifier.
        """
        node = self.node
        state = node.state
        # A naive run re-derives everything below, so the incremental
        # bookkeeping no longer describes "changes since the last push".
        self.invalidate_incremental()
        if not node.incoming_rules:
            state.state_u = UpdateState.CLOSED
            return
        state.state_u = UpdateState.OPEN
        own_path = (node.node_id,) + tuple(path)
        self._start_round(own_path)

    def _start_round(self, path: tuple[NodeId, ...]) -> None:
        """Send one Query per (incoming rule, source) and await the answers."""
        node = self.node
        state = node.state
        if state.pending_answers:
            # A round is already in flight; remember to run another one when
            # it completes, so no trigger is ever lost.
            state.rerun_requested = True
            return
        if not node.incoming_rules:
            state.state_u = UpdateState.CLOSED
            return
        state.update_started = True
        state.round_dirty = False
        state.rerun_requested = False
        state.queried_paths.add(path)
        for rule_id, rule in node.incoming_rules.items():
            state.rule_flags.setdefault(rule_id, RuleFlags())
            for source in rule.sources:
                state.pending_answers.add((rule_id, source))
        # Send after registering every expectation, so an answer delivered
        # re-entrantly (zero-latency transports) cannot complete the round
        # prematurely.
        for rule_id, rule in node.incoming_rules.items():
            for source in rule.sources:
                node.send(
                    source,
                    MessageType.QUERY,
                    {
                        "rule_id": rule_id,
                        "requester": node.node_id,
                        "path": path,
                    },
                )

    def request_rule(self, rule: CoordinationRule) -> None:
        """Trigger (re-)querying after ``addLink`` installed a new rule.

        The whole rule set is re-pulled in a fresh round, which both fetches
        the new rule's data and re-checks the fix-point.
        """
        node = self.node
        state = node.state
        state.state_u = UpdateState.OPEN
        state.rule_flags.setdefault(rule.rule_id, RuleFlags())
        if state.pending_answers:
            state.rerun_requested = True
        else:
            self._start_round((node.node_id,))

    # ------------------------------------------------------- incremental mode

    def invalidate_incremental(self) -> None:
        """Drop the delta log and fragment caches (any naive run does this).

        After invalidation the next incremental push falls back to one full
        fragment evaluation per rule (re-seeding the caches); correctness
        never depends on the caches being present.
        """
        state = self.node.state
        state.delta_log.clear()
        state.fragment_cache.clear()
        state.fragment_mark.clear()

    def start_incremental(self, changes: Mapping[str, Iterable[tuple]]) -> None:
        """Seed the delta frontier at this node (incremental update run).

        ``changes`` maps relation names to rows *already inserted* into this
        node's database (the warm engines apply the sync delta before
        starting the phase).  No queries are sent and the node stays in
        whatever ``state_u`` the previous converged run left it in: the new
        rows are appended to the delta log and semi-naive fragment deltas
        are pushed to the dependants registered in ``owner`` by the previous
        run.  Receivers cascade through :meth:`on_answer`'s incremental
        branch until the frontier is empty — the engines' quiescence
        barriers detect exactly that.
        """
        node = self.node
        state = node.state
        seeded = 0
        for relation_name, rows in sorted(changes.items()):
            for row in rows:
                state.delta_log.append((relation_name, row))
                seeded += 1
        if seeded:
            node.stats.record_incremental(node.node_id, seed_rows=seeded)
        self._push_to_owners_incremental()

    def _incremental_fragment(self, rule: CoordinationRule) -> Fragment:
        """The rule's current full fragment, refreshed via the delta log.

        A cold cache (first incremental run after a naive one, or after
        :meth:`invalidate_incremental`) costs one full evaluation; from then
        on only the delta-log suffix since the last refresh is joined
        (semi-naive), which is what makes a cascade of pushes cost
        proportional to the change.
        """
        node = self.node
        state = node.state
        rule_id = rule.rule_id
        log = state.delta_log
        cached = state.fragment_cache.get(rule_id)
        if cached is None:
            fragment = evaluate_fragment(node, rule)
        else:
            mark = state.fragment_mark.get(rule_id, 0)
            if mark >= len(log):
                return cached
            delta: dict[str, list[tuple]] = {}
            for relation_name, row in log[mark:]:
                delta.setdefault(relation_name, []).append(row)
            fresh = fragment_delta_for(node.database, rule, node.node_id, delta)
            fragment = cached if fresh <= cached else frozenset(cached | fresh)
        state.fragment_cache[rule_id] = fragment
        state.fragment_mark[rule_id] = len(log)
        return fragment

    def _push_to_owners_incremental(self) -> None:
        """Push fragment *deltas* to every registered dependant.

        The incremental counterpart of :meth:`_push_to_owners`: fragments
        are refreshed semi-naively and each (rule, requester) pair receives
        only the rows not yet pushed to it, tagged ``incremental`` so the
        receiver joins them as a delta.  Pairs with nothing new are skipped
        entirely, which is what terminates the cascade.
        """
        node = self.node
        state = node.state
        pushes = 0
        for entry in state.update_owner:
            if entry.requester is None or entry.rule_id is None:
                continue
            rule = node.outgoing_rules.get(entry.rule_id)
            if rule is None:
                continue
            fragment = self._incremental_fragment(rule)
            key = (entry.rule_id, entry.requester)
            previous = state.pushed_fragments.get(key, frozenset())
            fresh = fragment - previous
            if not fresh:
                continue
            state.pushed_fragments[key] = fragment
            pushes += 1
            node.send(
                entry.requester,
                MessageType.ANSWER,
                {
                    "rule_id": entry.rule_id,
                    "source": node.node_id,
                    "tuples": fresh,
                    "complete": state.state_u == UpdateState.CLOSED,
                    "path": (node.node_id,),
                    "incremental": True,
                },
            )
        if pushes:
            node.stats.record_incremental(node.node_id, pushes=pushes)

    def _on_incremental_answer(
        self,
        rule: CoordinationRule,
        rule_id: str,
        source: NodeId,
        tuples: Fragment,
    ) -> None:
        """A5, delta-driven: join only the fresh rows, apply, cascade."""
        node = self.node
        state = node.state
        previous = state.fragments.get((rule_id, source), frozenset())
        fresh = tuples - previous
        if not fresh:
            node.stats.record_update(node.node_id, received=len(tuples), inserted=0)
            return
        state.fragments[(rule_id, source)] = frozenset(previous | fresh)
        fragments = {
            src: state.fragments.get((rule_id, src), frozenset())
            for src in rule.sources
        }
        answers = join_fragments(
            rule, fragments, delta_source=source, delta_rows=fresh
        )
        inserted = node.database.apply_view_tuples(
            rule_id, rule.head, rule.distinguished_variables, answers
        )
        node.stats.record_update(
            node.node_id, received=len(tuples), inserted=len(inserted)
        )
        if inserted:
            head_relation = rule.head.relation
            for row in inserted:
                state.delta_log.append((head_relation, row))
            node.stats.record_incremental(
                node.node_id, rules_fired=1, rows_derived=len(inserted)
            )
            self._push_to_owners_incremental()

    # ------------------------------------------------------------------- A4

    def on_query(self, message: Message) -> None:
        """Algorithm A4 (``Query``): answer a fragment request and propagate."""
        node = self.node
        state = node.state
        rule_id: str = message.payload["rule_id"]
        requester: NodeId = message.payload["requester"]
        path: tuple[NodeId, ...] = tuple(message.payload["path"])

        rule = node.outgoing_rules.get(rule_id)
        if rule is None:
            # The rule was deleted while the query was in flight (Section 4);
            # answer nothing and do not register the requester.
            return

        # A node with nothing to import holds complete data by definition.
        if not node.incoming_rules:
            state.state_u = UpdateState.CLOSED

        duplicate = state.has_update_owner(requester, rule_id)
        node.stats.record_query(node.node_id, duplicate=duplicate)
        if not duplicate:
            origin = path[-1] if path else requester
            state.update_owner.append(
                OwnerEntry(requester=requester, origin=origin, rule_id=rule_id)
            )

        fragment = evaluate_fragment(node, rule)
        # A query answer *is* a push of the full fragment: recording it keeps
        # the push-suppression ledger exact, so neither a later naive
        # `_push_to_owners` nor an incremental delta push re-sends rows the
        # requester already received in this answer.
        state.pushed_fragments[(rule_id, requester)] = fragment
        node.send(
            requester,
            MessageType.ANSWER,
            {
                "rule_id": rule_id,
                "source": node.node_id,
                "tuples": fragment,
                "complete": state.state_u == UpdateState.CLOSED,
                "path": path,
            },
        )

        # Propagate the update wave: a node that has not started updating yet
        # starts its own pull rounds when the wave reaches it.
        if node.incoming_rules and not state.update_started:
            state.state_u = UpdateState.OPEN
            self._start_round((node.node_id,) + path)
        elif (
            node.propagation == "per_path"
            and node.incoming_rules
            and node.node_id not in path
            and ((node.node_id,) + path) not in state.queried_paths
        ):
            # Faithful per-path re-propagation (the duplicate queries the
            # paper's statistics module counts).  The extra answers are
            # applied like any other answer but play no role in the round
            # bookkeeping.
            extended = (node.node_id,) + path
            state.queried_paths.add(extended)
            for own_rule_id, own_rule in node.incoming_rules.items():
                for source in own_rule.sources:
                    node.send(
                        source,
                        MessageType.QUERY,
                        {
                            "rule_id": own_rule_id,
                            "requester": node.node_id,
                            "path": extended,
                        },
                    )

    # ------------------------------------------------------------------- A5

    def on_answer(self, message: Message) -> None:
        """Algorithm A5 (``Answer``): apply a fragment answer locally."""
        node = self.node
        state = node.state
        rule_id: str = message.payload["rule_id"]
        source: NodeId = message.payload["source"]
        tuples: Fragment = frozenset(message.payload["tuples"])
        complete: bool = message.payload["complete"]
        path: tuple[NodeId, ...] = tuple(message.payload["path"])

        rule = node.incoming_rules.get(rule_id)
        if rule is None:
            # Rule deleted while the answer was in flight: drop it.
            return

        if message.payload.get("incremental"):
            # A delta push from an incremental run: the fresh rows are joined
            # semi-naively against the cached fragments, with no effect on the
            # naive round bookkeeping below (incremental runs have no rounds).
            self._on_incremental_answer(rule, rule_id, source, tuples)
            return

        flags = state.rule_flags.setdefault(rule_id, RuleFlags())
        previous = state.fragments.get((rule_id, source), frozenset())
        fragment_grew = not tuples <= previous
        state.fragments[(rule_id, source)] = frozenset(previous | tuples)
        if complete:
            flags.complete_sources.add(source)
            if set(rule.sources) <= flags.complete_sources:
                flags.flag = True

        if fragment_grew or (rule_id, source) in state.pending_answers:
            # Re-join and re-apply only when the source contributed something
            # new, or when this answer completes a pull round (so the round's
            # dirty flag is meaningful even for the first, empty answers).
            fragments = {
                src: state.fragments.get((rule_id, src), frozenset())
                for src in rule.sources
            }
            answers = join_fragments(rule, fragments)
            inserted = node.database.apply_view_tuples(
                rule_id, rule.head, rule.distinguished_variables, answers
            )
        else:
            inserted = set()
        node.stats.record_update(
            node.node_id, received=len(tuples), inserted=len(inserted)
        )

        path_flags = state.update_paths.setdefault(path, PathFlags())
        path_flags.no_new_data = not inserted
        if complete:
            path_flags.closed = True

        if inserted:
            # New data: remember that this round is dirty, re-open if we had
            # already closed, and push the refreshed fragments downstream.
            state.round_dirty = True
            if state.state_u == UpdateState.CLOSED:
                state.state_u = UpdateState.OPEN
                state.rerun_requested = True
            self._push_to_owners()

        state.pending_answers.discard((rule_id, source))
        if not state.pending_answers:
            self._complete_round()

    # ---------------------------------------------------------------- rounds

    def _complete_round(self) -> None:
        """A full round of answers has arrived: close or start the next round."""
        node = self.node
        state = node.state
        if not state.update_started:
            # Answers arrived outside any round (e.g. pure pushes while the
            # node never started); rounds have nothing to conclude.
            if state.rerun_requested:
                state.rerun_requested = False
                self._start_round((node.node_id,))
            return
        state.rounds_completed += 1
        if state.round_dirty or state.rerun_requested:
            state.round_dirty = False
            state.rerun_requested = False
            self._start_round((node.node_id,))
            return
        # Fix-point at this node: the last full round imported nothing new.
        was_closed = state.state_u == UpdateState.CLOSED
        state.state_u = UpdateState.CLOSED
        for rule_id in node.incoming_rules:
            state.rule_flags.setdefault(rule_id, RuleFlags()).finished = True
        for flags in state.update_paths.values():
            flags.closed = True
        if not was_closed:
            # Tell dependants our fragments are complete, so their own rule
            # flags can be set (closure propagates through acyclic parts).
            self._push_to_owners(force=True)

    # ------------------------------------------------------------------ push

    def _push_to_owners(self, *, force: bool = False) -> None:
        """Push refreshed fragments to every dependant registered in ``owner``.

        This is the second half of A5: when the local database changed (or the
        node just closed), every node that imports data from this node
        receives an updated answer, so new facts keep flowing until no node
        changes any more (the fix-point).

        To keep cascades bounded, a push to a given (rule, requester) pair is
        suppressed when the fragment has not changed since the last push to
        that pair — the "delta optimisation" the paper leaves for future work.
        ``force=True`` (used for the one-off closure notification) overrides
        the suppression so dependants always learn about completeness.
        """
        node = self.node
        state = node.state
        fragment_cache: dict[str, Fragment] = {}
        for entry in state.update_owner:
            if entry.requester is None or entry.rule_id is None:
                continue
            rule = node.outgoing_rules.get(entry.rule_id)
            if rule is None:
                continue
            fragment = fragment_cache.get(entry.rule_id)
            if fragment is None:
                fragment = evaluate_fragment(node, rule)
                fragment_cache[entry.rule_id] = fragment
            key = (entry.rule_id, entry.requester)
            if not force and state.pushed_fragments.get(key) == fragment:
                continue
            state.pushed_fragments[key] = fragment
            node.send(
                entry.requester,
                MessageType.ANSWER,
                {
                    "rule_id": entry.rule_id,
                    "source": node.node_id,
                    "tuples": fragment,
                    "complete": state.state_u == UpdateState.CLOSED,
                    "path": (node.node_id,),
                },
            )

    # ---------------------------------------------------------------- local

    def local_answer(self, rule: CoordinationRule) -> set[tuple]:
        """Evaluate a whole rule against this node's database only.

        Used by the baselines and by tests; the distributed protocol itself
        always works fragment-wise.
        """
        query = rule.query
        answers = set()
        distinguished = rule.distinguished_variables
        for binding in evaluate_body(self.node.database, query):
            if _comparisons_hold(rule, binding):
                answers.add(tuple(binding[v] for v in distinguished))
        return answers
