"""One peer of the P2P database network.

A :class:`PeerNode` bundles what Figure 2 of the paper calls the P2P Layer and
the local database: the node's identifier, its :class:`LocalDatabase` (LDB +
DBS), the coordination rules that target it (``incoming_rules``) and the rules
that read from it (``outgoing_rules``), the per-node protocol state of
Section 3, and the two protocol engines (topology discovery and distributed
update).  The node is transport-agnostic: it only ever calls
``transport.send`` and exposes a single ``handle`` entry point that the
transport invokes for every delivered message — the Database Manager role of
the architecture.
"""

from __future__ import annotations

from typing import Mapping

from repro.coordination.rule import CoordinationRule, NodeId
from repro.core.discovery import DiscoveryProtocol
from repro.core.state import NodeState, UpdateState
from repro.core.update import PROPAGATION_POLICIES, UpdateProtocol
from repro.database.database import LocalDatabase
from repro.database.query import ConjunctiveQuery
from repro.errors import ProtocolError, RuleError
from repro.network.message import Message, MessageType
from repro.network.transport import BaseTransport
from repro.stats.collector import StatisticsCollector


class PeerNode:
    """A database peer: local data, coordination rules and protocol engines."""

    def __init__(
        self,
        node_id: NodeId,
        database: LocalDatabase,
        transport: BaseTransport,
        stats: StatisticsCollector | None = None,
        propagation: str = "once",
        path_limit: int = 5_000,
    ):
        if propagation not in PROPAGATION_POLICIES:
            raise ValueError(
                f"propagation must be one of {PROPAGATION_POLICIES}, got {propagation!r}"
            )
        self.node_id = node_id
        self.database = database
        self.transport = transport
        self.stats = stats if stats is not None else transport.stats
        self.propagation = propagation
        # Cap on the number of maximal dependency paths the node materialises
        # during discovery (factorial on dense topologies, see DESIGN.md).
        self.path_limit = path_limit

        self.incoming_rules: dict[str, CoordinationRule] = {}
        self.outgoing_rules: dict[str, CoordinationRule] = {}
        self.state = NodeState()

        self.discovery = DiscoveryProtocol(self)
        self.update = UpdateProtocol(self)

        transport.register(node_id, self.handle)

    # ----------------------------------------------------------------- rules

    def add_incoming_rule(self, rule: CoordinationRule) -> None:
        """Install a rule whose head is at this node."""
        if rule.target != self.node_id:
            raise RuleError(
                f"rule {rule.rule_id!r} targets {rule.target!r}, not {self.node_id!r}"
            )
        self.incoming_rules[rule.rule_id] = rule

    def add_outgoing_rule(self, rule: CoordinationRule) -> None:
        """Install a rule that reads data from this node."""
        if self.node_id not in rule.sources:
            raise RuleError(
                f"rule {rule.rule_id!r} does not read from node {self.node_id!r}"
            )
        self.outgoing_rules[rule.rule_id] = rule

    def remove_incoming_rule(self, rule_id: str) -> None:
        """Uninstall an incoming rule (no-op if absent)."""
        self.incoming_rules.pop(rule_id, None)
        self.state.rule_flags.pop(rule_id, None)

    def remove_outgoing_rule(self, rule_id: str) -> None:
        """Uninstall an outgoing rule and forget dependants registered through it."""
        self.outgoing_rules.pop(rule_id, None)
        self.state.update_owner = [
            entry for entry in self.state.update_owner if entry.rule_id != rule_id
        ]

    # -------------------------------------------------------------- messaging

    def send(
        self, recipient: NodeId, message_type: MessageType, payload: Mapping
    ) -> None:
        """Send one protocol message through the transport."""
        self.transport.send(
            Message(
                sender=self.node_id,
                recipient=recipient,
                type=message_type,
                payload=dict(payload),
            )
        )

    def handle(self, message: Message) -> None:
        """Dispatch one delivered message to the matching protocol handler."""
        handlers = {
            MessageType.REQUEST_NODES: self.discovery.on_request_nodes,
            MessageType.DISCOVERY_ANSWER: self.discovery.on_discovery_answer,
            MessageType.QUERY: self.update.on_query,
            MessageType.ANSWER: self.update.on_answer,
            MessageType.UPDATE_REQUEST: self._on_update_request,
            MessageType.ADD_RULE: self._on_add_rule,
            MessageType.DELETE_RULE: self._on_delete_rule,
            MessageType.RESET: self._on_reset,
        }
        handler = handlers.get(message.type)
        if handler is None:
            raise ProtocolError(
                f"node {self.node_id!r} cannot handle message type {message.type!r}"
            )
        handler(message)

    # ------------------------------------------------------------ control msgs

    def _on_update_request(self, message: Message) -> None:
        """Start the update phase on behalf of the requesting super-peer."""
        path = tuple(message.payload.get("path", ()))
        self.update.start(path)

    def _on_add_rule(self, message: Message) -> None:
        """Section 4 ``addRule`` notification: install a rule at run time."""
        rule: CoordinationRule = message.payload["rule"]
        role: str = message.payload.get("role", "target")
        if role == "target":
            self.add_incoming_rule(rule)
            if self.state.update_started or message.payload.get("trigger", False):
                self.update.request_rule(rule)
        else:
            self.add_outgoing_rule(rule)

    def _on_delete_rule(self, message: Message) -> None:
        """Section 4 ``deleteRule`` notification: drop a rule at run time."""
        rule_id: str = message.payload["rule_id"]
        role: str = message.payload.get("role", "target")
        if role == "target":
            self.remove_incoming_rule(rule_id)
        else:
            self.remove_outgoing_rule(rule_id)

    def _on_reset(self, message: Message) -> None:
        """Super-peer reset: clear protocol state and optionally the statistics."""
        self.state.reset_discovery()
        self.state.reset_update()
        if message.payload.get("clear_data", False):
            self.database.clear()

    # ----------------------------------------------------------------- queries

    def local_query(self, query: ConjunctiveQuery) -> set[tuple]:
        """Answer a local query from the node's own database only.

        After the update phase has reached its fix-point this is exactly the
        paper's goal: "subsequent local queries to be answered locally within
        a node, without fetching data from other nodes at query time".
        """
        return self.database.query(query)

    # ------------------------------------------------------------------ state

    @property
    def is_update_closed(self) -> bool:
        """True when the node reached the update fix-point (``state_u`` closed)."""
        return self.state.state_u == UpdateState.CLOSED

    def __repr__(self) -> str:
        return (
            f"PeerNode({self.node_id!r}, rules_in={len(self.incoming_rules)}, "
            f"rules_out={len(self.outgoing_rules)}, rows={self.database.total_rows()})"
        )
