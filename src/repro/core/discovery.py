"""Topology discovery (algorithms A1–A3 of the paper).

The discovery phase makes each participating node aware of the dependency
edges reachable from it, from which it derives its maximal dependency paths
(Definitions 6–7).  The flow is:

* ``Discover`` (A1) — run at the initiating node (the super-peer or any node
  acting on its own behalf): it sends ``requestNodes`` to the source node of
  every coordination rule targeting it.
* ``requestNodes`` (A2) — a node receiving a request records who asked and on
  whose behalf, forwards the request to its own sources *the first time it
  sees that origin* (this is how "the discovery algorithm stops when a node is
  reached twice"), and immediately answers with the dependency edges it knows
  so far.
* ``processAnswer`` (A3) — a node receiving an answer merges the edges into
  its ``Edges`` relation, updates the per-branch flags, and echoes the grown
  edge set to every recorded owner.

Two deliberate deviations from the literal pseudo-code, both required for
termination and documented in DESIGN.md:

* answers are echoed to owners **only when something changed** (the edge set
  grew or the node's state changed); the literal pseudo-code echoes on every
  answer, which livelocks on cyclic topologies;
* the dependency edge reported for a request from ``sender`` to this node is
  ``(sender → this node)``, matching Definition 5 (the head node depends on
  the body node); the pseudo-code's ``⟨ID, IDs⟩`` has the opposite order,
  which contradicts the definition and the example.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.coordination.depgraph import DependencyGraph
from repro.coordination.rule import NodeId
from repro.core.state import DiscoveryState, OwnerEntry, PathFlags
from repro.network.message import Message, MessageType

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import PeerNode


class DiscoveryProtocol:
    """The discovery-phase behaviour of one peer node."""

    def __init__(self, node: "PeerNode"):
        self.node = node
        self._finalized_edge_count = -1

    # ------------------------------------------------------------------ A1

    def start(self) -> None:
        """Algorithm A1 (``Discover``): begin discovery on behalf of this node."""
        node = self.node
        state = node.state
        if not node.incoming_rules:
            state.state_d = DiscoveryState.CLOSED
            state.finished = True
            state.paths.clear()
            return
        if state.state_d == DiscoveryState.UNDEFINED:
            state.state_d = DiscoveryState.DISCOVERY
        state.origins_seen.add(node.node_id)
        state.discovery_owner.append(OwnerEntry(requester=None, origin=node.node_id))
        for rule in node.incoming_rules.values():
            for source in rule.sources:
                state.edges.add((node.node_id, source))
                node.send(
                    source,
                    MessageType.REQUEST_NODES,
                    {"sender": node.node_id, "origin": node.node_id},
                )

    # ------------------------------------------------------------------ A2

    def on_request_nodes(self, message: Message) -> None:
        """Algorithm A2 (``requestNodes``): process a discovery request."""
        node = self.node
        state = node.state
        sender: NodeId = message.payload["sender"]
        origin: NodeId = message.payload["origin"]

        if not node.incoming_rules:
            state.state_d = DiscoveryState.CLOSED
            state.finished = True
        elif origin not in state.origins_seen:
            state.origins_seen.add(origin)
            if state.state_d == DiscoveryState.UNDEFINED:
                state.state_d = DiscoveryState.DISCOVERY
            for rule in node.incoming_rules.values():
                for source in rule.sources:
                    state.edges.add((node.node_id, source))
                    node.send(
                        source,
                        MessageType.REQUEST_NODES,
                        {"sender": node.node_id, "origin": origin},
                    )
        else:
            # The request reached this node a second time for the same origin:
            # the branch through this node is finished (loop detection).
            state.finished = True

        if not state.has_discovery_owner(sender, origin):
            state.discovery_owner.append(OwnerEntry(requester=sender, origin=origin))

        # The requester depends on this node: report the corresponding edge
        # together with everything this node already knows.
        edges = set(state.edges)
        edges.add((sender, node.node_id))
        node.send(
            sender,
            MessageType.DISCOVERY_ANSWER,
            {
                "origin": origin,
                "edges": frozenset(edges),
                "state": state.state_d.value,
                "finished": state.finished,
                "responder": node.node_id,
            },
        )

    # ------------------------------------------------------------------ A3

    def on_discovery_answer(self, message: Message) -> None:
        """Algorithm A3 (``processAnswer``): merge an answer and echo changes."""
        node = self.node
        state = node.state
        origin: NodeId = message.payload["origin"]
        received_edges: frozenset = message.payload["edges"]
        answer_state: str = message.payload["state"]
        answer_finished: bool = message.payload["finished"]
        responder: NodeId = message.payload["responder"]

        before_edges = len(state.edges)
        state.edges.update(received_edges)
        edges_changed = len(state.edges) != before_edges

        state_before = (state.state_d, state.finished)
        if answer_state == DiscoveryState.CLOSED.value:
            state.branch_state_closed[responder] = True
        if answer_finished or answer_state == DiscoveryState.CLOSED.value:
            state.branch_finished[responder] = True

        self._refresh_closure()
        state_changed = (state.state_d, state.finished) != state_before

        if edges_changed or state_changed:
            self._echo_to_owners()
        if state_changed and state.state_d == DiscoveryState.CLOSED:
            self.finalize_paths()

    # ------------------------------------------------------------------ misc

    def _refresh_closure(self) -> None:
        """Recompute ``state_d`` / ``finished`` from the per-branch flags."""
        node = self.node
        state = node.state
        sources = {
            source
            for rule in node.incoming_rules.values()
            for source in rule.sources
        }
        if not sources:
            state.state_d = DiscoveryState.CLOSED
            state.finished = True
            return
        if all(state.branch_state_closed.get(source, False) for source in sources):
            state.state_d = DiscoveryState.CLOSED
        if all(state.branch_finished.get(source, False) for source in sources):
            state.finished = True
            # The initiating node (an owner entry with no requester) may close
            # on "all branches finished" even if loops prevented every branch
            # from reporting a closed state (the paper's `if ID == IDo` case).
            if any(entry.requester is None for entry in state.discovery_owner):
                state.state_d = DiscoveryState.CLOSED

    def _echo_to_owners(self) -> None:
        """Forward the accumulated edges to every node that asked us."""
        node = self.node
        state = node.state
        for entry in state.discovery_owner:
            if entry.requester is None:
                continue
            node.send(
                entry.requester,
                MessageType.DISCOVERY_ANSWER,
                {
                    "origin": entry.origin,
                    "edges": frozenset(state.edges),
                    "state": state.state_d.value,
                    "finished": state.finished,
                    "responder": node.node_id,
                },
            )

    def finalize_paths(self) -> None:
        """Compute the node's maximal dependency paths from its ``Edges`` set.

        Called when the node closes during the protocol and again by the
        super-peer once the network is quiescent, so that every participating
        node ends up with its ``Paths`` relation populated (the paper's stated
        post-condition of the discovery phase).

        The enumeration is skipped when the edge set has not changed since the
        last call, and it is capped at ``node.path_limit`` paths — on dense
        topologies the number of maximal dependency paths is factorial in the
        node count, and the update algorithm does not need the full list.
        """
        node = self.node
        state = node.state
        if self._finalized_edge_count == len(state.edges) and state.paths:
            return
        self._finalized_edge_count = len(state.edges)
        graph = DependencyGraph(edges=state.edges)
        graph.add_node(node.node_id)
        state.paths = {
            path: state.paths.get(path, PathFlags())
            for path in graph.maximal_dependency_paths(
                node.node_id, limit=node.path_limit
            )
        }
