"""Set-semantics relations over immutable tuples.

A :class:`Relation` is the extension of one relation schema at one peer.  The
engine uses set semantics (the paper's update step only inserts a tuple when
its projection is not already present), keeps insertion cheap, and maintains
simple hash indexes on demand so that the backtracking join in
:mod:`repro.database.evaluate` does not degrade to nested loops on the larger
DBLP-sized workloads.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.database.schema import RelationSchema
from repro.errors import SchemaError

Row = tuple
"""A database tuple; values are strings, ints or :class:`LabeledNull`."""


class Relation:
    """The extension of a relation schema: a set of rows plus optional indexes."""

    def __init__(self, schema: RelationSchema, rows: Iterable[Row] = ()):
        self.schema = schema
        self._rows: set[Row] = set()
        # position -> value -> set of rows; built lazily per position.
        self._indexes: dict[int, dict[object, set[Row]]] = {}
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------ basic

    @property
    def name(self) -> str:
        """Name of the underlying relation schema."""
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._rows

    def rows(self) -> frozenset[Row]:
        """A snapshot of all rows."""
        return frozenset(self._rows)

    # ---------------------------------------------------------------- updates

    def insert(self, row: Row) -> bool:
        """Insert ``row``; return True if the relation changed.

        The arity is validated against the schema; set semantics means a
        duplicate insert is a no-op that returns False.
        """
        row = tuple(row)
        self.schema.validate_tuple(row)
        if row in self._rows:
            return False
        self._rows.add(row)
        for position, index in self._indexes.items():
            index[row[position]].add(row)
        return True

    def insert_many(self, rows: Iterable[Row]) -> int:
        """Insert every row in ``rows``; return how many were actually new."""
        return sum(1 for row in rows if self.insert(row))

    def delete(self, row: Row) -> bool:
        """Delete ``row``; return True if it was present."""
        row = tuple(row)
        if row not in self._rows:
            return False
        self._rows.discard(row)
        for position, index in self._indexes.items():
            bucket = index.get(row[position])
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[row[position]]
        return True

    def clear(self) -> None:
        """Remove every row (indexes are dropped as well)."""
        self._rows.clear()
        self._indexes.clear()

    # ---------------------------------------------------------------- lookups

    def scan(self) -> Iterator[Row]:
        """Iterate over all rows (alias of ``iter`` for readability in joins)."""
        return iter(self._rows)

    def lookup(self, position: int, value: object) -> Iterator[Row]:
        """Iterate over rows whose attribute at ``position`` equals ``value``.

        Builds a hash index on ``position`` the first time it is used; later
        lookups on the same position are O(matching rows).
        """
        if position < 0 or position >= self.schema.arity:
            raise SchemaError(
                f"position {position} out of range for relation {self.name!r}"
            )
        index = self._indexes.get(position)
        if index is None:
            index = defaultdict(set)
            for row in self._rows:
                index[row[position]].add(row)
            self._indexes[position] = index
        return iter(index.get(value, ()))

    def project(self, positions: Iterable[int]) -> set[Row]:
        """Return the projection of the relation onto ``positions``."""
        positions = tuple(positions)
        for position in positions:
            if position < 0 or position >= self.schema.arity:
                raise SchemaError(
                    f"position {position} out of range for relation {self.name!r}"
                )
        return {tuple(row[p] for p in positions) for row in self._rows}

    # ------------------------------------------------------------------ misc

    def copy(self) -> "Relation":
        """An independent copy sharing the (immutable) schema."""
        return Relation(self.schema, self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.schema == other.schema and self._rows == other._rows

    def __repr__(self) -> str:
        return f"Relation({self.name}, {len(self._rows)} rows)"
