"""In-memory relational engine used as every peer's local database (LDB).

The paper assumes "all nodes are relational databases" whose coordination
rules carry conjunctive queries in head and body.  This package provides the
substrate the distributed algorithms run on:

* :mod:`repro.database.schema` — relation schemas and database schemas (the
  paper's DBS component),
* :mod:`repro.database.relation` — set-semantics relations over immutable
  tuples,
* :mod:`repro.database.nulls` — labelled nulls / Skolem terms for existential
  variables in rule heads,
* :mod:`repro.database.query` — the conjunctive-query AST (atoms, variables,
  constants, built-in comparison predicates),
* :mod:`repro.database.evaluate` — evaluation of conjunctive queries over a
  local database (backtracking join with simple index support),
* :mod:`repro.database.parser` — a small textual syntax for queries and rules,
* :mod:`repro.database.database` — :class:`LocalDatabase`, the per-peer store.
"""

from repro.database.schema import Attribute, RelationSchema, DatabaseSchema
from repro.database.relation import Relation
from repro.database.nulls import LabeledNull, SkolemFactory, is_null
from repro.database.query import (
    Variable,
    Constant,
    Term,
    Atom,
    Comparison,
    ConjunctiveQuery,
)
from repro.database.evaluate import evaluate_query, evaluate_body, substitute
from repro.database.parser import parse_atom, parse_query, parse_rule_text
from repro.database.database import LocalDatabase

__all__ = [
    "Attribute",
    "RelationSchema",
    "DatabaseSchema",
    "Relation",
    "LabeledNull",
    "SkolemFactory",
    "is_null",
    "Variable",
    "Constant",
    "Term",
    "Atom",
    "Comparison",
    "ConjunctiveQuery",
    "evaluate_query",
    "evaluate_body",
    "substitute",
    "parse_atom",
    "parse_query",
    "parse_rule_text",
    "LocalDatabase",
]
