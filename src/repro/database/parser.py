"""A small textual syntax for atoms, queries and coordination rules.

The paper writes rules such as::

    r2 : B : b(X,Y), b(Y,Z) -> C : c(X,Z)
    r4 : B : b(X,Y), b(X,Z), X != Z -> A : a(X,Y)

This module parses exactly that style:

* ``parse_atom("b(X, 'smith', 3)")`` → :class:`Atom`,
* ``parse_query("a(X,Z) :- b(X,Y), c(Y,Z), X != Z")`` → :class:`ConjunctiveQuery`,
* ``parse_rule_text("B: b(X,Y), b(Y,Z), X != Z -> C: c(X,Z)")`` →
  ``(head_node, head_atom, body_literals, comparisons)`` where
  ``body_literals`` is a list of ``(node, Atom)`` pairs.

Conventions: identifiers starting with an upper-case letter are variables,
quoted strings and integers are constants, and lower-case identifiers are
string constants (handy for tiny examples).
"""

from __future__ import annotations

import re

from repro.database.query import (
    COMPARISON_OPERATORS,
    Atom,
    Comparison,
    ConjunctiveQuery,
    Constant,
    Term,
    Variable,
)
from repro.errors import QueryError

_ATOM_RE = re.compile(r"^\s*(?:(?P<node>[A-Za-z_]\w*)\s*:\s*)?(?P<rel>[A-Za-z_]\w*)\s*\((?P<args>[^()]*)\)\s*$")
_COMPARISON_RE = re.compile(
    r"^\s*(?P<left>[^\s!<>=]+)\s*(?P<op>!=|<=|>=|=|<|>)\s*(?P<right>[^\s!<>=]+)\s*$"
)


def _parse_term(text: str) -> Term:
    """Parse a single term: variable, quoted string, integer or bare constant."""
    text = text.strip()
    if not text:
        raise QueryError("empty term")
    if (text[0] == "'" and text[-1] == "'") or (text[0] == '"' and text[-1] == '"'):
        return Constant(text[1:-1])
    if re.fullmatch(r"-?\d+", text):
        return Constant(int(text))
    if re.fullmatch(r"[A-Za-z_]\w*", text) is None:
        raise QueryError(f"cannot parse term {text!r}")
    if text[0].isupper():
        return Variable(text)
    return Constant(text)


def parse_atom(text: str) -> Atom:
    """Parse an atom like ``b(X, Y)`` (a node prefix, if present, is ignored)."""
    node, atom = parse_prefixed_atom(text)
    return atom


def parse_prefixed_atom(text: str) -> tuple[str | None, Atom]:
    """Parse ``Node: rel(args)`` returning the optional node prefix and the atom."""
    match = _ATOM_RE.match(text)
    if match is None:
        raise QueryError(f"cannot parse atom {text!r}")
    args = match.group("args").strip()
    terms = [_parse_term(part) for part in _split_arguments(args)] if args else []
    return match.group("node"), Atom(match.group("rel"), terms)


def _split_arguments(args: str) -> list[str]:
    """Split an argument list on commas that are not inside quoted constants."""
    parts: list[str] = []
    current: list[str] = []
    quote: str | None = None
    for char in args:
        if quote is not None:
            current.append(char)
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            quote = char
            current.append(char)
        elif char == ",":
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if quote is not None:
        raise QueryError(f"unterminated quote in argument list {args!r}")
    parts.append("".join(current))
    return parts


def _split_literals(text: str) -> list[str]:
    """Split a conjunction on commas that are not inside parentheses."""
    literals: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise QueryError(f"unbalanced parentheses in {text!r}")
        if char == "," and depth == 0:
            literals.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise QueryError(f"unbalanced parentheses in {text!r}")
    if "".join(current).strip():
        literals.append("".join(current))
    return [literal.strip() for literal in literals if literal.strip()]


def _parse_literal(text: str) -> tuple[str | None, Atom] | Comparison:
    """Parse one literal: either a (possibly node-prefixed) atom or a comparison."""
    if "(" in text:
        return parse_prefixed_atom(text)
    match = _COMPARISON_RE.match(text)
    if match is None:
        raise QueryError(f"cannot parse literal {text!r}")
    operator = match.group("op")
    if operator not in COMPARISON_OPERATORS:
        raise QueryError(f"unsupported operator in literal {text!r}")
    return Comparison(
        operator, _parse_term(match.group("left")), _parse_term(match.group("right"))
    )


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse ``head :- body`` or a bare body conjunction into a query."""
    if ":-" in text:
        head_text, body_text = text.split(":-", 1)
        head: Atom | None = parse_atom(head_text)
    else:
        head, body_text = None, text
    atoms: list[Atom] = []
    comparisons: list[Comparison] = []
    for literal_text in _split_literals(body_text):
        literal = _parse_literal(literal_text)
        if isinstance(literal, Comparison):
            comparisons.append(literal)
        else:
            atoms.append(literal[1])
    if not atoms:
        raise QueryError(f"query {text!r} has no body atoms")
    return ConjunctiveQuery(head, atoms, comparisons)


def parse_rule_text(
    text: str,
) -> tuple[str, Atom, list[tuple[str, Atom]], list[Comparison]]:
    """Parse a coordination rule in the paper's arrow syntax.

    Accepts both ``->`` and ``=>`` as the arrow.  The head *must* carry a node
    prefix; body atoms may carry one each — a body atom without a prefix
    inherits the prefix of the previous body atom (matching how the paper
    writes ``B : b(X,Y), b(Y,Z) -> C : c(X,Z)``).

    Returns ``(head_node, head_atom, body_literals, comparisons)``.
    """
    arrow = "->" if "->" in text else "=>"
    if arrow not in text:
        raise QueryError(f"rule {text!r} has no -> or => arrow")
    body_text, head_text = text.rsplit(arrow, 1)

    head_node, head_atom = parse_prefixed_atom(head_text)
    if head_node is None:
        raise QueryError(f"rule head {head_text.strip()!r} must be node-qualified")

    body_literals: list[tuple[str, Atom]] = []
    comparisons: list[Comparison] = []
    current_node: str | None = None
    for literal_text in _split_literals(body_text):
        literal = _parse_literal(literal_text)
        if isinstance(literal, Comparison):
            comparisons.append(literal)
            continue
        node, atom = literal
        if node is not None:
            current_node = node
        if current_node is None:
            raise QueryError(
                f"body atom {literal_text!r} has no node prefix and none to inherit"
            )
        body_literals.append((current_node, atom))
    if not body_literals:
        raise QueryError(f"rule {text!r} has an empty body")
    return head_node, head_atom, body_literals, comparisons
