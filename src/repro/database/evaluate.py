"""Evaluation of conjunctive queries over a local database.

The evaluator is a straightforward backtracking join: body atoms are ordered
greedily (bound atoms first, then by relation size), each atom is matched
against its relation using the per-position hash indexes of
:class:`~repro.database.relation.Relation`, and built-in comparisons are
checked as soon as both sides are bound.  This is ample for the paper's
workload sizes (about a thousand tuples per node) while staying easy to audit.

Two evaluation modes share that machinery (see ``docs/incremental.md``):

* **naive** — :func:`evaluate_body` / :func:`evaluate_query` enumerate every
  binding of the full body over the full database; this is what cold runs
  and the one-shot engines always use.
* **semi-naive** — :func:`evaluate_body_delta` takes a *delta* (rows recently
  inserted into the database) and yields only bindings that touch at least
  one delta row: each body atom whose relation appears in the delta is
  seeded with the delta rows in turn while the remaining atoms join against
  the full database.  Since any derivation that is *new* since the delta was
  applied must use at least one delta row, the union over seed atoms covers
  exactly the new derivations — at cost proportional to the delta, not the
  database.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from repro.database.query import Atom, Comparison, ConjunctiveQuery, Constant, Variable
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.database.database import LocalDatabase

Binding = dict[Variable, object]
"""A partial assignment of query variables to database values."""


def substitute(atom: Atom, binding: Mapping[Variable, object]) -> tuple:
    """Instantiate ``atom`` under ``binding``; every variable must be bound."""
    values = []
    for term in atom.terms:
        if isinstance(term, Constant):
            values.append(term.value)
        else:
            if term not in binding:
                raise QueryError(
                    f"variable {term} of atom {atom} is not bound"
                )
            values.append(binding[term])
    return tuple(values)


def _order_atoms(database: "LocalDatabase", atoms: Iterable[Atom]) -> list[Atom]:
    """Order body atoms smallest-relation-first.

    A static greedy order is enough here: the dynamic gain of full Selinger
    style ordering does not matter at the workload sizes of the paper, and a
    deterministic order keeps traces reproducible.
    """
    def size(atom: Atom) -> int:
        if atom.relation in database.schema:
            return len(database.relation(atom.relation))
        return 0

    return sorted(atoms, key=lambda atom: (size(atom), atom.relation, str(atom)))


def _match_atom(
    database: "LocalDatabase",
    atom: Atom,
    binding: Binding,
) -> Iterator[Binding]:
    """Yield extensions of ``binding`` that satisfy ``atom`` in ``database``.

    Missing relations are treated as empty (a node may receive a query about a
    relation it does not store; the paper's mediator nodes have no LDB at all).
    """
    if atom.relation not in database.schema:
        return
    relation = database.relation(atom.relation)
    if relation.schema.arity != atom.arity:
        raise QueryError(
            f"atom {atom} has arity {atom.arity} but relation "
            f"{atom.relation!r} has arity {relation.schema.arity}"
        )

    # Use an index on the first bound position, if any.
    probe_position: int | None = None
    probe_value: object | None = None
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            probe_position, probe_value = position, term.value
            break
        if term in binding:
            probe_position, probe_value = position, binding[term]
            break

    if probe_position is None:
        candidates: Iterable[tuple] = relation.scan()
    else:
        candidates = relation.lookup(probe_position, probe_value)

    for row in candidates:
        extended = _extend_binding(atom, row, binding)
        if extended is not None:
            yield extended


_UNBOUND = object()


def _extend_binding(atom: Atom, row: tuple, binding: Binding) -> Binding | None:
    """Extend ``binding`` so that ``atom`` matches ``row``, or None on clash."""
    extended = dict(binding)
    for position, term in enumerate(atom.terms):
        value = row[position]
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            bound = extended.get(term, _UNBOUND)
            if bound is _UNBOUND:
                extended[term] = value
            elif bound != value:
                return None
    return extended


def _comparisons_hold(
    comparisons: Iterable[Comparison], binding: Binding, *, partial: bool
) -> bool:
    """Check built-ins under ``binding``.

    With ``partial=True`` a comparison whose variables are not yet all bound
    is considered satisfied (it will be re-checked once the binding grows).
    """
    for comparison in comparisons:
        operands = []
        ready = True
        for term in (comparison.left, comparison.right):
            if isinstance(term, Constant):
                operands.append(term.value)
            elif term in binding:
                operands.append(binding[term])
            else:
                ready = False
                break
        if not ready:
            if partial:
                continue
            return False
        if not comparison.evaluate(operands[0], operands[1]):
            return False
    return True


def _extend_over(
    database: "LocalDatabase",
    query: ConjunctiveQuery,
    ordered: list[Atom],
    seed: Binding,
) -> Iterator[Binding]:
    """Complete ``seed`` over ``ordered`` atoms, checking comparisons early."""

    def extend(index: int, binding: Binding) -> Iterator[Binding]:
        if not _comparisons_hold(query.comparisons, binding, partial=True):
            return
        if index == len(ordered):
            if _comparisons_hold(query.comparisons, binding, partial=False):
                yield binding
            return
        for extended in _match_atom(database, ordered[index], binding):
            yield from extend(index + 1, extended)

    yield from extend(0, seed)


def evaluate_body(
    database: "LocalDatabase", query: ConjunctiveQuery
) -> Iterator[Binding]:
    """Yield every binding of the body variables that satisfies the query body."""
    yield from _extend_over(database, query, _order_atoms(database, query.body), {})


def evaluate_body_delta(
    database: "LocalDatabase",
    query: ConjunctiveQuery,
    delta: Mapping[str, Iterable[tuple]],
) -> Iterator[Binding]:
    """Semi-naive evaluation: yield only bindings that touch a delta row.

    ``delta`` maps relation names to rows recently *inserted* into
    ``database`` (the rows must already be present — this restricts the
    search, it does not extend the database).  Each body atom whose relation
    appears in the delta is used as the seed in turn: the atom is bound to
    the delta rows only, and the remaining atoms join against the full
    database.  Any derivation that is new since the delta was applied uses
    at least one delta row, so the union over seed atoms covers exactly the
    new derivations.  A binding joining several delta rows is yielded once
    per seed atom it matches — callers accumulate answers into sets, so the
    duplicates are harmless and the single pass stays cheap.
    """
    delta_rows = {
        name: tuple(rows) for name, rows in delta.items() if rows
    }
    if not delta_rows:
        return
    atoms = list(query.body)
    for seed_index, seed_atom in enumerate(atoms):
        rows = delta_rows.get(seed_atom.relation)
        if not rows:
            continue
        rest = atoms[:seed_index] + atoms[seed_index + 1 :]
        ordered = _order_atoms(database, rest)
        for row in rows:
            if len(row) != seed_atom.arity:
                raise QueryError(
                    f"delta row {row!r} does not match the arity of atom "
                    f"{seed_atom}"
                )
            seeded = _extend_binding(seed_atom, row, {})
            if seeded is not None:
                yield from _extend_over(database, query, ordered, seeded)


def evaluate_query(
    database: "LocalDatabase", query: ConjunctiveQuery
) -> set[tuple]:
    """Evaluate a conjunctive query and return the set of answer tuples.

    For a query with a head, the answers are the head instantiations projected
    on the *distinguished* variables (existential head variables are not part
    of the answer — the receiver of the answer invents nulls for them).  For a
    body-only query the answers are the bindings of all body variables in
    order of first occurrence.
    """
    answers: set[tuple] = set()
    if query.head is not None:
        projection = query.distinguished_variables
    else:
        projection = query.body_variables
    for binding in evaluate_body(database, query):
        answers.add(tuple(binding[variable] for variable in projection))
    return answers
