"""Relation and database schemas.

The paper's node architecture (Figure 2) distinguishes the local database
(LDB) from the *database schema* (DBS), the part of the schema a node shares
with the network.  A node may even have no LDB at all and act purely as a
mediator, but "DBS must always be specified in order to allow a node to
participate on the network".  This module models both levels:

* :class:`RelationSchema` — a named relation with ordered, named attributes,
* :class:`DatabaseSchema` — the collection of relation schemas a node exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError


@dataclass(frozen=True)
class Attribute:
    """A single attribute of a relation schema.

    ``dtype`` is advisory ("str", "int", ...): the engine stores Python values
    and labelled nulls and does not enforce types, mirroring the loose typing
    of the paper's prototype, but the information is kept for documentation
    and for the synthetic data generators.
    """

    name: str
    dtype: str = "str"

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid attribute name: {self.name!r}")


@dataclass(frozen=True)
class RelationSchema:
    """A named relation with an ordered tuple of attributes."""

    name: str
    attributes: tuple[Attribute, ...]

    def __init__(self, name: str, attributes: Iterable[Attribute | str]):
        if not name or not name.replace("_", "").isalnum():
            raise SchemaError(f"invalid relation name: {name!r}")
        attrs = tuple(
            attr if isinstance(attr, Attribute) else Attribute(attr)
            for attr in attributes
        )
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        seen: set[str] = set()
        for attr in attrs:
            if attr.name in seen:
                raise SchemaError(
                    f"duplicate attribute {attr.name!r} in relation {name!r}"
                )
            seen.add(attr.name)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(attr.name for attr in self.attributes)

    def index_of(self, attribute_name: str) -> int:
        """Return the position of ``attribute_name`` in the schema.

        Raises :class:`SchemaError` if the attribute does not exist.
        """
        for position, attr in enumerate(self.attributes):
            if attr.name == attribute_name:
                return position
        raise SchemaError(
            f"relation {self.name!r} has no attribute {attribute_name!r}"
        )

    def validate_tuple(self, values: tuple) -> tuple:
        """Check that ``values`` matches the arity of the schema.

        Returns the tuple unchanged so the call can be used inline.
        """
        if len(values) != self.arity:
            raise SchemaError(
                f"tuple {values!r} has arity {len(values)}, "
                f"relation {self.name!r} expects {self.arity}"
            )
        return values

    def __str__(self) -> str:
        attrs = ", ".join(self.attribute_names)
        return f"{self.name}({attrs})"


class DatabaseSchema:
    """The set of relation schemas a peer exposes to the network (DBS)."""

    def __init__(self, relations: Iterable[RelationSchema] = ()):
        self._relations: dict[str, RelationSchema] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: RelationSchema) -> None:
        """Register a relation schema; duplicate names are an error."""
        if relation.name in self._relations:
            raise SchemaError(f"relation {relation.name!r} already in schema")
        self._relations[relation.name] = relation

    def get(self, name: str) -> RelationSchema:
        """Return the schema of relation ``name`` or raise :class:`SchemaError`."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Names of all relations, in insertion order."""
        return tuple(self._relations)

    def as_mapping(self) -> Mapping[str, RelationSchema]:
        """A read-only view of the name → schema mapping."""
        return dict(self._relations)

    def __str__(self) -> str:
        return "; ".join(str(rel) for rel in self)

    def __repr__(self) -> str:
        return f"DatabaseSchema({list(self._relations)})"
