"""Conjunctive-query abstract syntax.

The paper's coordination rules "may contain conjunctive queries in both the
head and body (without any safety assumption and possibly with built-in
predicates)".  This module provides the corresponding AST:

* :class:`Variable` / :class:`Constant` — terms,
* :class:`Atom` — a relational atom ``r(t1, ..., tk)``,
* :class:`Comparison` — a built-in predicate such as ``X != Y`` or ``X < 3``,
* :class:`ConjunctiveQuery` — a head atom, a list of body atoms and a list of
  built-ins, with helpers for variable classification (distinguished,
  existential).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.errors import QueryError


@dataclass(frozen=True)
class Variable:
    """A query variable.  Variables start with an upper-case letter by convention."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A constant term (string or integer) shared by all peers (the paper's URIs)."""

    value: Union[str, int]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


Term = Union[Variable, Constant]

#: Comparison operators supported in built-in predicates.
COMPARISON_OPERATORS = ("!=", "<=", ">=", "=", "<", ">")


@dataclass(frozen=True)
class Atom:
    """A relational atom ``relation(term, ..., term)``."""

    relation: str
    terms: tuple[Term, ...]

    def __init__(self, relation: str, terms: Iterable[Term]):
        terms = tuple(terms)
        if not relation:
            raise QueryError("atom needs a relation name")
        for term in terms:
            if not isinstance(term, (Variable, Constant)):
                raise QueryError(f"invalid term {term!r} in atom {relation!r}")
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", terms)

    @property
    def arity(self) -> int:
        """Number of terms of the atom."""
        return len(self.terms)

    @property
    def variables(self) -> tuple[Variable, ...]:
        """The variables of the atom, in order of first occurrence."""
        seen: list[Variable] = []
        for term in self.terms:
            if isinstance(term, Variable) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def __str__(self) -> str:
        rendered = ", ".join(str(term) for term in self.terms)
        return f"{self.relation}({rendered})"


@dataclass(frozen=True)
class Comparison:
    """A built-in comparison predicate between two terms."""

    operator: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.operator not in COMPARISON_OPERATORS:
            raise QueryError(f"unsupported comparison operator {self.operator!r}")

    @property
    def variables(self) -> tuple[Variable, ...]:
        """Variables mentioned by the comparison."""
        result = []
        for term in (self.left, self.right):
            if isinstance(term, Variable) and term not in result:
                result.append(term)
        return tuple(result)

    def evaluate(self, left_value: object, right_value: object) -> bool:
        """Apply the operator to two concrete values.

        Ordered comparisons between values of incomparable types evaluate to
        False instead of raising, because labelled nulls may flow into
        built-ins when rules chain; equality and inequality always work.
        """
        if self.operator == "=":
            return left_value == right_value
        if self.operator == "!=":
            return left_value != right_value
        try:
            if self.operator == "<":
                return left_value < right_value  # type: ignore[operator]
            if self.operator == "<=":
                return left_value <= right_value  # type: ignore[operator]
            if self.operator == ">":
                return left_value > right_value  # type: ignore[operator]
            return left_value >= right_value  # type: ignore[operator]
        except TypeError:
            return False

    def __str__(self) -> str:
        return f"{self.left} {self.operator} {self.right}"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query: ``head :- body_atoms, comparisons``.

    ``head`` may be ``None`` for a boolean/body-only query (used internally
    when a node only needs the satisfying bindings of a body).
    """

    head: Atom | None
    body: tuple[Atom, ...]
    comparisons: tuple[Comparison, ...] = field(default=())

    def __init__(
        self,
        head: Atom | None,
        body: Iterable[Atom],
        comparisons: Iterable[Comparison] = (),
    ):
        body = tuple(body)
        comparisons = tuple(comparisons)
        if not body:
            raise QueryError("conjunctive query needs at least one body atom")
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "comparisons", comparisons)
        # Built-ins must only mention variables that occur in some body atom,
        # otherwise they can never be evaluated.
        body_vars = set(self.body_variables)
        for comparison in comparisons:
            for variable in comparison.variables:
                if variable not in body_vars:
                    raise QueryError(
                        f"comparison {comparison} uses variable {variable} "
                        "that does not occur in the body"
                    )

    @property
    def body_variables(self) -> tuple[Variable, ...]:
        """Variables occurring in body atoms, in order of first occurrence."""
        seen: list[Variable] = []
        for atom in self.body:
            for variable in atom.variables:
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)

    @property
    def head_variables(self) -> tuple[Variable, ...]:
        """Variables occurring in the head (empty for body-only queries)."""
        if self.head is None:
            return ()
        return self.head.variables

    @property
    def distinguished_variables(self) -> tuple[Variable, ...]:
        """Head variables that are bound by the body (universally quantified)."""
        body_vars = set(self.body_variables)
        return tuple(v for v in self.head_variables if v in body_vars)

    @property
    def existential_variables(self) -> tuple[Variable, ...]:
        """Head variables not bound by the body (the paper's existentials)."""
        body_vars = set(self.body_variables)
        return tuple(v for v in self.head_variables if v not in body_vars)

    @property
    def relations(self) -> tuple[str, ...]:
        """Names of the relations mentioned in the body, without duplicates."""
        seen: list[str] = []
        for atom in self.body:
            if atom.relation not in seen:
                seen.append(atom.relation)
        return tuple(seen)

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self.body)
        if self.comparisons:
            body += ", " + ", ".join(str(c) for c in self.comparisons)
        head = str(self.head) if self.head is not None else "()"
        return f"{head} :- {body}"
