"""The per-peer local database (the paper's LDB behind the Wrapper).

:class:`LocalDatabase` groups the relations of one peer, answers conjunctive
queries, and applies the chase-style update step of algorithm A6
(:meth:`LocalDatabase.apply_view_tuples`): given a rule head and a set of
answer tuples for its distinguished variables, insert the corresponding head
facts, inventing deterministic labelled nulls for existential variables.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from repro.database.evaluate import evaluate_body, evaluate_query
from repro.database.nulls import SkolemFactory
from repro.database.query import Atom, ConjunctiveQuery, Constant, Variable
from repro.database.relation import Relation, Row
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.errors import QueryError, SchemaError

if TYPE_CHECKING:
    from repro.obs.metrics import ChaseProfile


class LocalDatabase:
    """An in-memory relational database for one peer."""

    def __init__(self, schema: DatabaseSchema | Iterable[RelationSchema] = ()):
        if not isinstance(schema, DatabaseSchema):
            schema = DatabaseSchema(schema)
        self.schema = schema
        self._relations: dict[str, Relation] = {
            rel.name: Relation(rel) for rel in schema
        }
        self.skolems = SkolemFactory()
        #: A6 projection-check profiling sink; attached by traced sessions
        #: (None keeps the chase on the unprofiled fast path).
        self.profile: ChaseProfile | None = None

    # ----------------------------------------------------------------- schema

    def add_relation(self, relation_schema: RelationSchema) -> None:
        """Add a new (empty) relation to the database."""
        self.schema.add(relation_schema)
        self._relations[relation_schema.name] = Relation(relation_schema)

    def relation(self, name: str) -> Relation:
        """Return the relation named ``name`` (raises :class:`SchemaError`)."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def relations(self) -> Iterator[Relation]:
        """Iterate over all relations."""
        return iter(self._relations.values())

    # ----------------------------------------------------------------- facts

    def insert(self, relation_name: str, row: Row) -> bool:
        """Insert one row; returns True if the database changed."""
        return self.relation(relation_name).insert(row)

    def insert_many(self, relation_name: str, rows: Iterable[Row]) -> int:
        """Insert many rows; returns the number of new rows."""
        return self.relation(relation_name).insert_many(rows)

    def delete(self, relation_name: str, row: Row) -> bool:
        """Delete one row; returns True if it was present."""
        return self.relation(relation_name).delete(row)

    def total_rows(self) -> int:
        """Total number of rows across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    def facts(self) -> dict[str, frozenset[Row]]:
        """A snapshot mapping relation name to its rows."""
        return {name: rel.rows() for name, rel in self._relations.items()}

    def clear(self) -> None:
        """Remove every row from every relation and forget invented nulls."""
        for relation in self._relations.values():
            relation.clear()
        self.skolems.reset()

    # ----------------------------------------------------------------- queries

    def query(self, query: ConjunctiveQuery) -> set[tuple]:
        """Evaluate a conjunctive query against this database."""
        return evaluate_query(self, query)

    def bindings(self, query: ConjunctiveQuery) -> list[dict[Variable, object]]:
        """All satisfying bindings of a query body (for debugging / tests)."""
        return list(evaluate_body(self, query))

    # ------------------------------------------------------------------ chase

    def apply_view_tuples(
        self,
        rule_id: str,
        head: Atom,
        distinguished: tuple[Variable, ...],
        answers: Iterable[tuple],
    ) -> set[Row]:
        """Algorithm A6 (`UpdateLocalData`): materialise head facts.

        ``answers`` holds one tuple per firing, giving the values of the
        ``distinguished`` (universally quantified) head variables; existential
        head variables are filled with deterministic labelled nulls from the
        Skolem factory.

        Following the paper's pseudo-code ("if πR(t) ∉ R insert (πR(t)) into R
        with new values for existential"), a firing is skipped when some
        existing row already agrees with it on every *known* position — the
        positions filled by constants or distinguished variables.  This check
        is what makes the fix-point reachable on cyclic rule sets with
        existential variables.

        Returns the set of head rows that were actually new (empty set means
        the local fix-point condition "no new data" holds for this batch).
        """
        if head.relation not in self.schema:
            raise SchemaError(
                f"rule {rule_id!r} targets unknown relation {head.relation!r}"
            )
        relation = self.relation(head.relation)
        if relation.schema.arity != head.arity:
            raise QueryError(
                f"rule {rule_id!r} head {head} does not match the arity of "
                f"relation {head.relation!r}"
            )

        distinguished_names = {variable.name for variable in distinguished}
        known_positions = [
            position
            for position, term in enumerate(head.terms)
            if isinstance(term, Constant) or term.name in distinguished_names
        ]
        has_existentials = len(known_positions) < head.arity

        profile = self.profile
        if profile is not None:
            profile.calls += 1
            profile_started = time.perf_counter()

        inserted: set[Row] = set()
        for answer in answers:
            if len(answer) != len(distinguished):
                raise QueryError(
                    f"answer {answer!r} does not match distinguished variables "
                    f"{[str(v) for v in distinguished]} of rule {rule_id!r}"
                )
            binding: dict[str, object] = {
                variable.name: value
                for variable, value in zip(distinguished, answer)
            }
            row = []
            for term in head.terms:
                if isinstance(term, Constant):
                    row.append(term.value)
                elif term.name in binding:
                    row.append(binding[term.name])
                else:
                    row.append(self.skolems.null_for(rule_id, term.name, binding))
            row = tuple(row)
            if has_existentials:
                if profile is None:
                    if self._projection_present(relation, row, known_positions):
                        continue
                else:
                    profile.projection_checks += 1
                    present, scanned = self._projection_present_profiled(
                        relation, row, known_positions
                    )
                    profile.candidates_scanned += scanned
                    if present:
                        profile.skipped_by_projection += 1
                        continue
            if relation.insert(row):
                inserted.add(row)

        if profile is not None:
            profile.rows_inserted += len(inserted)
            profile.wall_seconds += time.perf_counter() - profile_started
        return inserted

    @staticmethod
    def _projection_present(
        relation: Relation, row: Row, known_positions: list[int]
    ) -> bool:
        """True if some existing row agrees with ``row`` on all known positions."""
        if not known_positions:
            return len(relation) > 0
        candidates = relation.lookup(known_positions[0], row[known_positions[0]])
        for candidate in candidates:
            if all(candidate[p] == row[p] for p in known_positions[1:]):
                return True
        return False

    @staticmethod
    def _projection_present_profiled(
        relation: Relation, row: Row, known_positions: list[int]
    ) -> tuple[bool, int]:
        """:meth:`_projection_present` plus the number of candidates scanned."""
        if not known_positions:
            return len(relation) > 0, 0
        candidates = relation.lookup(known_positions[0], row[known_positions[0]])
        scanned = 0
        for candidate in candidates:
            scanned += 1
            if all(candidate[p] == row[p] for p in known_positions[1:]):
                return True, scanned
        return False, scanned

    # ------------------------------------------------------------------ misc

    def copy(self) -> "LocalDatabase":
        """A deep copy with independent relations (nulls are shared values)."""
        clone = LocalDatabase(DatabaseSchema(list(self.schema)))
        for name, relation in self._relations.items():
            clone._relations[name] = relation.copy()
        return clone

    def snapshot(self) -> Mapping[str, frozenset[Row]]:
        """Alias of :meth:`facts`, used by the experiment harness."""
        return self.facts()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LocalDatabase):
            return NotImplemented
        return self.facts() == other.facts()

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}:{len(rel)}" for name, rel in self._relations.items())
        return f"LocalDatabase({parts})"
