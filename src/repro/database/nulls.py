"""Labelled nulls (Skolem terms) for existential variables in rule heads.

Coordination rules may contain existential variables in the head (the paper
supports them "in a similar fashion to the algorithm of [Calvanese et al.,
2003]").  The local update step A6 says to insert the projected tuple "with
new values for existential" attributes.  Taken literally — a *fresh* value on
every firing — a cyclic rule set would keep generating new tuples forever and
the fix-point of Lemma 1 would never be reached.

The standard fix, which we adopt and document in DESIGN.md, is
*skolemisation*: the value invented for an existential head variable is a
deterministic function of (rule id, variable name, binding of the universal
head variables).  Re-firing the same rule on the same data reproduces the same
labelled null, so the chase terminates, while distinct bindings still get
distinct unknown values — which is exactly the intended "some unknown value"
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping


@dataclass(frozen=True)
class LabeledNull:
    """An unknown value invented for an existential head variable.

    Two labelled nulls are equal iff their labels are equal; the label encodes
    the Skolem term (rule, variable, binding) that produced the null.
    """

    label: str

    def __str__(self) -> str:
        return f"_:{self.label}"

    def __repr__(self) -> str:
        return f"LabeledNull({self.label!r})"


def is_null(value: object) -> bool:
    """True if ``value`` is a labelled null."""
    return isinstance(value, LabeledNull)


class SkolemFactory:
    """Creates deterministic labelled nulls for existential head variables.

    The factory is deterministic and stateless with respect to equality — the
    same ``(rule_id, variable, binding)`` always yields an equal
    :class:`LabeledNull` — but it keeps a cache so that repeated requests also
    return the *same object*, and a counter so callers can ask how many
    distinct nulls were invented (useful for experiment statistics).
    """

    def __init__(self) -> None:
        self._cache: dict[str, LabeledNull] = {}

    def null_for(
        self,
        rule_id: str,
        variable: str,
        binding: Mapping[str, Hashable],
    ) -> LabeledNull:
        """Return the labelled null for ``variable`` under ``binding``.

        ``binding`` maps the universally quantified head variables of the rule
        to the concrete values they take in the current firing.  Only the
        binding content matters, not its ordering.
        """
        key_parts = [
            f"{name}={_render(value)}" for name, value in sorted(binding.items())
        ]
        label = f"{rule_id}/{variable}({','.join(key_parts)})"
        null = self._cache.get(label)
        if null is None:
            null = LabeledNull(label)
            self._cache[label] = null
        return null

    @property
    def invented_count(self) -> int:
        """Number of distinct labelled nulls invented so far."""
        return len(self._cache)

    def reset(self) -> None:
        """Forget all invented nulls (used when an experiment resets a node)."""
        self._cache.clear()


def _render(value: Hashable) -> str:
    """Render a binding value into the Skolem label unambiguously."""
    if isinstance(value, LabeledNull):
        return f"null[{value.label}]"
    return f"{type(value).__name__}:{value}"
