"""Message envelopes for the discovery and update protocols.

A :class:`Message` is what a JXTA message envelope is in the prototype: a
typed payload addressed from one peer to another.  The payload is a plain
dictionary of picklable values; :meth:`Message.size_estimate` gives a byte
estimate used by the statistics module to report "volumes of data transferred
onto pipes" without actually serialising every message.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping


class MessageType(str, Enum):
    """The message vocabulary of the two protocol phases plus control traffic."""

    # Topology discovery (algorithms A1-A3).
    REQUEST_NODES = "request_nodes"
    DISCOVERY_ANSWER = "discovery_answer"

    # Distributed update (algorithms A4-A6).
    UPDATE_REQUEST = "update_request"
    QUERY = "query"
    ANSWER = "answer"

    # Dynamic network control (Section 4) and super-peer control (Section 5).
    ADD_RULE = "add_rule"
    DELETE_RULE = "delete_rule"
    STATS_REQUEST = "stats_request"
    STATS_REPLY = "stats_reply"
    RESET = "reset"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_SEQUENCE = itertools.count()


@dataclass(frozen=True)
class Message:
    """One message on the simulated network."""

    sender: str
    recipient: str
    type: MessageType
    payload: Mapping[str, Any] = field(default_factory=dict)
    sequence: int = field(default_factory=lambda: next(_SEQUENCE))

    def size_estimate(self) -> int:
        """Rough size in bytes: envelope plus payload contents.

        Tuples count 8 bytes per field, strings their length, everything else
        a flat 8 bytes.  The estimate only needs to be monotone in the amount
        of data carried so that the byte counters of the statistics module
        rank configurations the same way real serialisation would.
        """
        size = 64  # envelope: addresses, type, sequence number
        for value in self.payload.values():
            size += _value_size(value)
        return size

    def __str__(self) -> str:
        return f"{self.type.value}[{self.sender}->{self.recipient}]#{self.sequence}"


def _value_size(value: Any) -> int:
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(_value_size(item) for item in value) + 8
    if isinstance(value, Mapping):
        return sum(_value_size(k) + _value_size(v) for k, v in value.items()) + 8
    return 8
