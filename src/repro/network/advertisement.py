"""A minimal JXTA-like advertisement and discovery service.

JXTA lets peers advertise resources (peers, pipes, peer groups, services) and
discover them "in a distributed, decentralized environment".  The algorithms
of the paper only need one piece of that machinery: a way for a freshly
joining node to learn which peers exist and which relation schemas they share,
so the super-peer can broadcast the coordination-rule file to everybody.

:class:`DiscoveryService` is a deliberately simple registry — a lookup table
shared by all peers of one simulated network.  Keeping it centralised is the
same simplification real JXTA deployments make when they run a rendezvous
peer, and it does not interact with the update/discovery algorithms, which
never consult it once rules are installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class Advertisement:
    """A peer's advertisement: its id, shared relation names and a group tag."""

    peer_id: str
    shared_relations: tuple[str, ...] = ()
    group: str = "default"
    attributes: tuple[tuple[str, str], ...] = field(default=())

    def attribute(self, name: str, default: str | None = None) -> str | None:
        """Look up a free-form attribute by name."""
        for key, value in self.attributes:
            if key == name:
                return value
        return default


class DiscoveryService:
    """Registry of peer advertisements for one simulated network."""

    def __init__(self) -> None:
        self._advertisements: dict[str, Advertisement] = {}

    def publish(self, advertisement: Advertisement) -> None:
        """Publish (or replace) the advertisement of a peer."""
        self._advertisements[advertisement.peer_id] = advertisement

    def withdraw(self, peer_id: str) -> None:
        """Remove a peer's advertisement (peer leaves the network)."""
        self._advertisements.pop(peer_id, None)

    def lookup(self, peer_id: str) -> Advertisement | None:
        """The advertisement of ``peer_id``, or None."""
        return self._advertisements.get(peer_id)

    def peers(self, group: str | None = None) -> tuple[str, ...]:
        """Ids of all advertised peers, optionally restricted to a group."""
        return tuple(
            ad.peer_id
            for ad in self._advertisements.values()
            if group is None or ad.group == group
        )

    def peers_sharing(self, relation_name: str) -> tuple[str, ...]:
        """Ids of peers that advertise ``relation_name`` in their shared schema."""
        return tuple(
            ad.peer_id
            for ad in self._advertisements.values()
            if relation_name in ad.shared_relations
        )

    def publish_all(self, advertisements: Iterable[Advertisement]) -> None:
        """Publish a batch of advertisements."""
        for advertisement in advertisements:
            self.publish(advertisement)

    def __len__(self) -> int:
        return len(self._advertisements)
