"""Pipes between acquainted peers.

In the prototype "when a node starts, it creates pipes with those nodes,
w.r.t. which it has coordination rules, or which have coordination rules
w.r.t. the given node.  Several coordination rules w.r.t. a given node can use
one pipe [...].  If some coordination rules are dropped and a pipe becomes
unassigned a coordination rule, then this pipe is also closed."

:class:`PipeTable` reproduces exactly that life-cycle: one pipe per unordered
pair of acquainted peers, reference-counted by the rules assigned to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PipeClosedError


@dataclass
class Pipe:
    """A bidirectional communication link between two peers."""

    endpoint_a: str
    endpoint_b: str
    rules: set[str] = field(default_factory=set)
    closed: bool = False

    @property
    def endpoints(self) -> frozenset[str]:
        """The unordered pair of peer ids this pipe connects."""
        return frozenset((self.endpoint_a, self.endpoint_b))

    def assign_rule(self, rule_id: str) -> None:
        """Assign a coordination rule to the pipe (re-opens a closed pipe)."""
        self.closed = False
        self.rules.add(rule_id)

    def unassign_rule(self, rule_id: str) -> None:
        """Drop a rule from the pipe; the pipe closes when none remain."""
        self.rules.discard(rule_id)
        if not self.rules:
            self.closed = True

    def check_open(self) -> None:
        """Raise :class:`PipeClosedError` when the pipe is closed."""
        if self.closed:
            raise PipeClosedError(
                f"pipe {self.endpoint_a}<->{self.endpoint_b} is closed"
            )


class PipeTable:
    """All pipes of one P2P system, keyed by the unordered peer pair."""

    def __init__(self) -> None:
        self._pipes: dict[frozenset[str], Pipe] = {}

    def pipe_for(self, peer_a: str, peer_b: str) -> Pipe | None:
        """The pipe between two peers, or None if it was never created."""
        return self._pipes.get(frozenset((peer_a, peer_b)))

    def ensure_pipe(self, peer_a: str, peer_b: str, rule_id: str) -> Pipe:
        """Create (or re-open) the pipe between two peers and assign a rule."""
        key = frozenset((peer_a, peer_b))
        pipe = self._pipes.get(key)
        if pipe is None:
            pipe = Pipe(peer_a, peer_b)
            self._pipes[key] = pipe
        pipe.assign_rule(rule_id)
        return pipe

    def drop_rule(self, peer_a: str, peer_b: str, rule_id: str) -> Pipe | None:
        """Unassign a rule from the pipe between two peers, closing it if empty."""
        pipe = self.pipe_for(peer_a, peer_b)
        if pipe is not None:
            pipe.unassign_rule(rule_id)
        return pipe

    def open_pipes(self) -> list[Pipe]:
        """All currently open pipes."""
        return [pipe for pipe in self._pipes.values() if not pipe.closed]

    def __len__(self) -> int:
        return len(self._pipes)

    def __repr__(self) -> str:
        return f"PipeTable({len(self.open_pipes())} open / {len(self._pipes)} total)"
