"""Message transports: a deterministic discrete-event one and an asyncio one.

The paper's algorithm "is based on an asynchronous model of communications
(while also supporting a synchronous alternative)".  Both models are provided
over the same handler interface so the protocol code in :mod:`repro.core` is
transport-agnostic:

* :class:`SyncTransport` — a discrete-event simulator with a virtual clock.
  Messages are delivered in (delivery time, sequence) order, handlers run to
  completion one at a time, and :meth:`SyncTransport.run` drains the network
  until quiescence.  This is the deterministic mode used by tests and
  benchmarks; the virtual clock at quiescence is the experiment's
  "execution time".
* :class:`AsyncTransport` — an asyncio implementation where every delivery is
  a separate task and latency is an ``asyncio.sleep``.  It exercises genuinely
  interleaved handler execution and is what the asynchronous examples use.

Handlers are synchronous callables ``handler(message) -> None`` that may call
``transport.send`` while running; protocol state updates are local to a node,
so running one handler at a time per node is all the isolation needed.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from typing import Callable

from repro.errors import NetworkError, UnknownPeerError
from repro.network.latency import ConstantLatency, LatencyModel
from repro.network.message import Message
from repro.stats.collector import StatisticsCollector

Handler = Callable[[Message], None]


class BaseTransport:
    """Shared peer registry, latency model and statistics plumbing."""

    def __init__(
        self,
        latency: LatencyModel | None = None,
        stats: StatisticsCollector | None = None,
    ):
        self.latency = latency or ConstantLatency(1.0)
        self.stats = stats or StatisticsCollector()
        self._handlers: dict[str, Handler] = {}
        self._trace: list[tuple[float, Message]] = []
        self.trace_enabled = False

    # ------------------------------------------------------------ registration

    def register(self, node_id: str, handler: Handler) -> None:
        """Register the message handler of peer ``node_id``."""
        if node_id in self._handlers:
            raise NetworkError(f"peer {node_id!r} is already registered")
        self._handlers[node_id] = handler

    def unregister(self, node_id: str) -> None:
        """Remove a peer from the network (undelivered messages to it are dropped)."""
        self._handlers.pop(node_id, None)

    def is_registered(self, node_id: str) -> bool:
        """True if ``node_id`` currently has a handler."""
        return node_id in self._handlers

    @property
    def peers(self) -> tuple[str, ...]:
        """All registered peer ids."""
        return tuple(self._handlers)

    # ----------------------------------------------------------------- tracing

    def enable_trace(self) -> None:
        """Record every delivered message with its delivery time (Figure 1 traces)."""
        self.trace_enabled = True

    @property
    def trace(self) -> list[tuple[float, Message]]:
        """The delivery trace recorded so far (empty unless tracing is enabled)."""
        return list(self._trace)

    def _handler_for(self, message: Message) -> Handler:
        handler = self._handlers.get(message.recipient)
        if handler is None:
            raise UnknownPeerError(
                f"message {message} addressed to unknown peer {message.recipient!r}"
            )
        return handler

    def _deliver(self, message: Message, at_time: float) -> None:
        """Run the recipient handler and account for the delivery."""
        handler = self._handlers.get(message.recipient)
        if handler is None:
            # The peer left the network while the message was in flight; the
            # dynamic-network semantics of Section 4 allows dropping it.
            return
        self.stats.record_message(
            message.type.value,
            message.sender,
            message.recipient,
            message.size_estimate(),
        )
        self.stats.advance_time(at_time)
        if self.trace_enabled:
            self._trace.append((at_time, message))
        handler(message)

    # --------------------------------------------------------------- interface

    def send(self, message: Message) -> None:  # pragma: no cover - abstract
        """Queue ``message`` for delivery."""
        raise NotImplementedError


class SyncTransport(BaseTransport):
    """Deterministic discrete-event transport with a virtual clock."""

    def __init__(
        self,
        latency: LatencyModel | None = None,
        stats: StatisticsCollector | None = None,
        max_messages: int = 1_000_000,
    ):
        super().__init__(latency=latency, stats=stats)
        self._queue: list[tuple[float, int, Message]] = []
        self.clock = 0.0
        self.max_messages = max_messages
        self.delivered_count = 0

    def send(self, message: Message) -> None:
        """Schedule ``message`` for delivery ``latency`` time units from now."""
        if message.recipient not in self._handlers:
            raise UnknownPeerError(
                f"cannot send {message}: recipient is not registered"
            )
        delivery_time = self.clock + self.latency.delay_for(message)
        heapq.heappush(self._queue, (delivery_time, message.sequence, message))

    @property
    def pending(self) -> int:
        """Number of messages queued but not yet delivered."""
        return len(self._queue)

    def run(self) -> float:
        """Deliver messages until the network is quiescent.

        Returns the virtual-clock time of the last delivery — the simulated
        execution time of whatever protocol phase was running.  Raises
        :class:`NetworkError` if more than ``max_messages`` deliveries happen,
        which indicates a non-terminating protocol (cf. Theorem 2(3)).
        """
        started = time.perf_counter()
        while self._queue:
            delivery_time, _sequence, message = heapq.heappop(self._queue)
            self.clock = max(self.clock, delivery_time)
            self.delivered_count += 1
            if self.delivered_count > self.max_messages:
                raise NetworkError(
                    f"exceeded {self.max_messages} deliveries; "
                    "the protocol does not appear to terminate"
                )
            self._deliver(message, self.clock)
        self.stats.elapsed_wall_seconds += time.perf_counter() - started
        return self.clock

    def step(self) -> Message | None:
        """Deliver exactly one message (or return None when quiescent)."""
        if not self._queue:
            return None
        delivery_time, _sequence, message = heapq.heappop(self._queue)
        self.clock = max(self.clock, delivery_time)
        self.delivered_count += 1
        self._deliver(message, self.clock)
        return message


class AsyncTransport(BaseTransport):
    """Asyncio transport: every delivery is an independent task.

    ``time_scale`` converts simulated latency units into wall-clock seconds so
    that examples finish quickly (the default makes one latency unit one
    millisecond).
    """

    def __init__(
        self,
        latency: LatencyModel | None = None,
        stats: StatisticsCollector | None = None,
        time_scale: float = 0.001,
        max_messages: int = 1_000_000,
    ):
        super().__init__(latency=latency, stats=stats)
        self.time_scale = time_scale
        self.max_messages = max_messages
        self.delivered_count = 0
        self._in_flight = 0
        self._quiescent = asyncio.Event()
        self._quiescent.set()
        self._event_loop: asyncio.AbstractEventLoop | None = None
        self._start_time: float | None = None
        self._sim_clock_offset = 0.0

    def _quiescent_event(self) -> asyncio.Event:
        """The quiescence event, re-bound when a new event loop takes over.

        Each ``asyncio.run`` creates a fresh loop; an ``asyncio.Event`` binds
        to the loop it is first awaited on, so a transport driven by several
        consecutive ``asyncio.run`` calls (one per façade run) needs a fresh
        event per loop.  Re-binding is only legal while nothing is in flight.
        The simulated clock is frozen across the idle gap between loops —
        like the synchronous transport's, it only advances with deliveries —
        by restarting the wall-clock anchor from the time already simulated.
        """
        loop = asyncio.get_running_loop()
        if self._event_loop is not loop:
            if self._in_flight:
                raise NetworkError(
                    "the transport has deliveries in flight on another event loop"
                )
            self._event_loop = loop
            self._quiescent = asyncio.Event()
            self._quiescent.set()
            if self._start_time is not None:
                self._sim_clock_offset = self.stats.simulated_time
                self._start_time = None
        return self._quiescent

    def send(self, message: Message) -> None:
        """Schedule an asynchronous delivery of ``message``."""
        if message.recipient not in self._handlers:
            raise UnknownPeerError(
                f"cannot send {message}: recipient is not registered"
            )
        loop = asyncio.get_running_loop()
        event = self._quiescent_event()
        self._in_flight += 1
        event.clear()
        loop.create_task(self._deliver_later(message))

    async def _deliver_later(self, message: Message) -> None:
        delay = self.latency.delay_for(message)
        await asyncio.sleep(delay * self.time_scale)
        try:
            self.delivered_count += 1
            if self.delivered_count > self.max_messages:
                raise NetworkError(
                    f"exceeded {self.max_messages} deliveries; "
                    "the protocol does not appear to terminate"
                )
            now = time.perf_counter()
            if self._start_time is None:
                self._start_time = now
            simulated = (
                self._sim_clock_offset + (now - self._start_time) / self.time_scale
            )
            self._deliver(message, simulated)
        finally:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._quiescent_event().set()

    async def wait_quiescent(self, timeout: float | None = None) -> None:
        """Wait until no message is in flight (poll-free via an event)."""
        while True:
            event = self._quiescent_event()
            if timeout is None:
                await event.wait()
            else:
                await asyncio.wait_for(event.wait(), timeout)
            # A handler triggered by the last delivery may have sent new
            # messages between the event being set and us waking up; loop
            # until the event is still set after a zero-length yield.
            await asyncio.sleep(0)
            if self._in_flight == 0:
                return

    @property
    def pending(self) -> int:
        """Number of deliveries currently in flight."""
        return self._in_flight
