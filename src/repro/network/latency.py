"""Deterministic latency models for the simulated network.

Every message is assigned a delivery delay by a latency model.  The models are
seeded and deterministic so that two runs of the same experiment produce the
same simulated completion time and message ordering — essential for the
regression tests and for comparing topologies fairly.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.network.message import Message


class LatencyModel(Protocol):
    """Anything that maps a message to a non-negative delivery delay."""

    def delay_for(self, message: Message) -> float:
        """Return the simulated delivery delay of ``message`` in time units."""
        ...  # pragma: no cover - protocol definition


class ConstantLatency:
    """Every message takes exactly ``delay`` time units (the default model)."""

    def __init__(self, delay: float = 1.0):
        if delay < 0:
            raise ValueError("latency must be non-negative")
        self.delay = delay

    def delay_for(self, message: Message) -> float:
        return self.delay


class UniformLatency:
    """Delay drawn uniformly from ``[low, high]`` with a seeded generator.

    The draw depends only on the seed and on the message sequence number, so
    replaying the same message sequence reproduces the same delays.
    """

    def __init__(self, low: float, high: float, seed: int = 0):
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high
        self.seed = seed

    def delay_for(self, message: Message) -> float:
        generator = random.Random(f"{self.seed}-{message.sequence}")
        return generator.uniform(self.low, self.high)


class PerHopLatency:
    """Different base delay per (sender, recipient) pair plus a constant floor.

    Used by the topology experiments to give, e.g., deeper tree levels a
    different link cost, or to model a slow peer.
    """

    def __init__(
        self,
        base: float = 1.0,
        overrides: dict[tuple[str, str], float] | None = None,
    ):
        if base < 0:
            raise ValueError("latency must be non-negative")
        self.base = base
        self.overrides = dict(overrides or {})

    def delay_for(self, message: Message) -> float:
        return self.overrides.get((message.sender, message.recipient), self.base)
