"""Simulated P2P message substrate (the JXTA stand-in).

The paper's prototype is built on JXTA, which provides peer naming, pipes,
message envelopes and resource advertisements over an arbitrary physical
network.  The distributed algorithms only rely on a small slice of that:
asynchronous delivery of messages between named peers over per-acquaintance
pipes.  This package provides exactly that slice as an in-process simulator:

* :mod:`repro.network.message` — message envelopes and the protocol's message
  types,
* :mod:`repro.network.pipe` — pipes between acquainted peers, opened and
  closed as coordination rules are added and dropped,
* :mod:`repro.network.latency` — deterministic latency models used to assign
  a simulated delivery delay to every message,
* :mod:`repro.network.transport` — :class:`SyncTransport`, a deterministic
  discrete-event transport (virtual clock), and :class:`AsyncTransport`, an
  asyncio transport exercising the same handlers concurrently,
* :mod:`repro.network.advertisement` — a minimal JXTA-like advertisement /
  discovery service for peers and their shared schemas.
"""

from repro.network.message import Message, MessageType
from repro.network.pipe import Pipe, PipeTable
from repro.network.latency import ConstantLatency, UniformLatency, PerHopLatency
from repro.network.transport import SyncTransport, AsyncTransport, BaseTransport
from repro.network.advertisement import Advertisement, DiscoveryService

__all__ = [
    "Message",
    "MessageType",
    "Pipe",
    "PipeTable",
    "ConstantLatency",
    "UniformLatency",
    "PerHopLatency",
    "BaseTransport",
    "SyncTransport",
    "AsyncTransport",
    "Advertisement",
    "DiscoveryService",
]
