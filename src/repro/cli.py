"""Command-line entry point: run the paper's experiments from a terminal.

``python -m repro list`` shows the available experiments;
``python -m repro run E4 --records 30`` regenerates one of them and prints
the same table the corresponding module's ``main()`` produces, and
``--strategy centralized`` reruns a workload experiment through any update
strategy registered in :mod:`repro.api.strategies`.  The CLI is a thin veneer
over :mod:`repro.experiments`, so scripted runs (benchmarks, CI, notebooks)
and interactive runs share exactly the same code paths.

``python -m repro lint scenario.json`` statically analyzes scenario files
(termination, safety, schema consistency — the checks of
:mod:`repro.analysis`, codes in ``docs/analysis.md``) without running
anything; ``run --no-preflight`` disables the same analyzer where it gates
experiment sessions.

``python -m repro serve --bind 127.0.0.1:8750 --tenants scenarios/`` boots
the long-running multi-tenant HTTP/WebSocket front-end of
:mod:`repro.serve` (endpoint reference in ``docs/serving.md``); it simply
forwards to ``python -m repro.serve``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable

from repro.api.strategies import available_strategies
from repro.errors import ReproError
from repro.experiments import (
    baseline_comparison,
    complexity_growth,
    data_distribution,
    depth_linearity,
    dynamic_changes,
    faults as faults_experiment,
    message_accounting,
    paper_example,
    scalability,
    separation,
    serving,
    trace_example,
)

def _parse_sizes(text: str) -> tuple[int, ...]:
    """Parse the --sizes flag ("127,511") into node counts."""
    try:
        sizes = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise ReproError(f"--sizes expects comma-separated integers, got {text!r}")
    if not sizes:
        raise ReproError("--sizes needs at least one node count")
    return sizes


def _parse_hosts(text: str | None) -> tuple[str, ...] | None:
    """Parse the --hosts flag ("h1:9101,h2:9101") into addresses (or None)."""
    if text is None:
        return None
    hosts = tuple(part.strip() for part in text.split(",") if part.strip())
    if not hosts:
        raise ReproError("--hosts needs at least one HOST:PORT address")
    return hosts


def _load_fault_plan(path: str | None):
    """Load the --faults plan file, or None when the flag was not given."""
    if path is None:
        return None
    from repro.faults import FaultPlan

    return FaultPlan.load_json(path)


#: Experiment id → (description, callable taking the parsed args).
_EXPERIMENTS: dict[str, tuple[str, Callable[[argparse.Namespace], str]]] = {
    "E1": (
        "dependency paths of the Section 2 example",
        lambda args: paper_example.main(),
    ),
    "E2": (
        "Figure 1 execution trace",
        lambda args: trace_example.main(limit=args.limit),
    ),
    "E3": (
        "scalability sweep over trees, layered DAGs and cliques",
        lambda args: (
            scalability.shard_main(
                records_per_node=getattr(args, "shard_records", 3),
                shards=getattr(args, "shards", 4),
                sizes=_parse_sizes(getattr(args, "sizes", "127,511")),
                engine=getattr(args, "engine", "sharded"),
                repeats=getattr(args, "repeats", 3),
                hosts=_parse_hosts(getattr(args, "hosts", None)),
                trace_path=getattr(args, "trace", None),
                faults=_load_fault_plan(getattr(args, "faults", None)),
            )
            if getattr(args, "engine", "sync")
            in ("sharded", "multiproc", "pooled", "socket")
            else scalability.main(
                records_per_node=args.records,
                strategy=getattr(args, "strategy", "distributed"),
            )
        ),
    ),
    "E4": (
        "execution time vs depth (linearity)",
        lambda args: depth_linearity.main(
            records_per_node=args.records,
            strategy=getattr(args, "strategy", "distributed"),
        ),
    ),
    "E5": (
        "data distributions: disjoint vs 50% overlap",
        lambda args: data_distribution.main(
            records_per_node=args.records,
            strategy=getattr(args, "strategy", "distributed"),
        ),
    ),
    "E6": (
        "per-node statistics / duplicate queries on a clique",
        lambda args: message_accounting.main(
            records_per_node=args.records,
            strategy=getattr(args, "strategy", "distributed"),
        ),
    ),
    "E7": (
        "update interleaved with addLink/deleteLink (Theorem 2)",
        lambda args: dynamic_changes.main(),
    ),
    "E8": (
        "separated component under churn (Theorem 3)",
        lambda args: separation.main(),
    ),
    "E9": (
        "materialised update vs query-time vs centralized",
        lambda args: baseline_comparison.main(),
    ),
    "E10": (
        "worst-case growth with clique size and change length",
        lambda args: complexity_growth.main(),
    ),
    "E11": (
        "convergence under injected faults (churn, loss, partitions)",
        lambda args: faults_experiment.main(
            records_per_node=getattr(args, "shard_records", 3),
            plan_path=getattr(args, "faults", None),
        ),
    ),
    "E12": (
        "multi-tenant serving under closed-loop HTTP load",
        lambda args: serving.main(
            records_per_node=getattr(args, "shard_records", 3),
            clients=getattr(args, "clients", 4),
            operations=getattr(args, "operations", 4),
        ),
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed separately so tests can exercise it)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for the EDBT P2P&DB 2004 paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS, key=lambda e: int(e[1:])),
        help="experiment id from DESIGN.md",
    )
    run_parser.add_argument(
        "--records",
        type=int,
        default=30,
        help="records per node for the workload-driven experiments (default 30)",
    )
    run_parser.add_argument(
        "--limit",
        type=int,
        default=40,
        help="number of trace rows to print for E2 (default 40)",
    )
    run_parser.add_argument(
        "--strategy",
        choices=available_strategies(),
        default="distributed",
        help="update strategy for the workload experiments (default distributed)",
    )
    run_parser.add_argument(
        "--engine",
        choices=("sync", "sharded", "multiproc", "pooled", "socket"),
        default="sync",
        help=(
            "execution engine for E3: 'sharded' runs the large sync-vs-sharded "
            "sweep instead of the paper-sized one; 'multiproc' additionally "
            "runs the one-process-per-shard engine; 'pooled' adds the "
            "repeat-run comparison against a persistent worker pool; "
            "'socket' adds the TCP shard-host engine (see --hosts) "
            "(default sync)"
        ),
    )
    run_parser.add_argument(
        "--hosts",
        default=None,
        help=(
            "comma-separated HOST:PORT shard-host addresses for --engine "
            "socket (each a running 'python -m repro.shardhost'); omitted, "
            "localhost hosts are auto-spawned"
        ),
    )
    run_parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help=(
            "update runs per engine for --engine pooled: the cold multiproc "
            "engine pays spawn/ship on each, the warm pool only on the first "
            "(default 3)"
        ),
    )
    run_parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="shard count for --engine sharded/multiproc (default 4)",
    )
    run_parser.add_argument(
        "--sizes",
        default="127,511",
        help=(
            "comma-separated node counts for --engine sharded/multiproc "
            "(default 127,511)"
        ),
    )
    run_parser.add_argument(
        "--shard-records",
        dest="shard_records",
        type=int,
        default=3,
        help="records per node for the sharded sweep (default 3; the sweep "
        "runs hundreds of nodes, so it stays small independently of --records)",
    )

    run_parser.add_argument(
        "--clients",
        type=int,
        default=4,
        help="closed-loop clients per tenant for the E12 serving sweep (default 4)",
    )
    run_parser.add_argument(
        "--operations",
        type=int,
        default=4,
        help="update+query pairs per E12 client (default 4)",
    )
    run_parser.add_argument(
        "--faults",
        default=None,
        metavar="PATH",
        help=(
            "a fault-plan JSON file (the format of FaultPlan.dump_json) to "
            "inject during the run; valid with E11 (replayed against the "
            "multiproc, pooled and socket engines) and with the E3 engine "
            "sweep under --engine multiproc/pooled/socket"
        ),
    )
    run_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "write a Chrome trace-event JSON timeline of the E3 engine sweep "
            "to PATH (open it at https://ui.perfetto.dev); only valid with "
            "E3 and --engine sharded/multiproc/pooled/socket"
        ),
    )
    run_parser.add_argument(
        "--verbose",
        action="store_true",
        help="enable debug logging on the repro.obs logger hierarchy",
    )
    run_parser.add_argument(
        "--no-preflight",
        dest="preflight",
        action="store_false",
        help=(
            "skip the static pre-flight analysis that gates every session "
            "built from a scenario spec (see 'repro lint')"
        ),
    )

    run_all = subparsers.add_parser("run-all", help="run every experiment in order")
    run_all.add_argument("--records", type=int, default=20)
    run_all.add_argument("--limit", type=int, default=20)
    run_all.add_argument(
        "--strategy", choices=available_strategies(), default="distributed"
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="statically analyze scenario JSON files without running them",
    )
    lint_parser.add_argument(
        "scenarios",
        nargs="+",
        help="scenario spec files (the JSON format of ScenarioSpec.dump_json)",
    )
    lint_parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (errors always fail)",
    )
    lint_parser.add_argument(
        "--cut-threshold",
        type=float,
        default=0.5,
        help=(
            "cross-shard cut fraction above which the P001 advisory fires "
            "for sharded specs (default 0.5)"
        ),
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help=(
            "boot the multi-tenant HTTP/WebSocket front-end "
            "(same as 'python -m repro.serve'; see docs/serving.md)"
        ),
    )
    serve_parser.add_argument(
        "serve_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to repro.serve (try: serve --help)",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="inspect trace files written by 'run ... --trace'",
    )
    trace_parser.add_argument(
        "action",
        choices=("summarize", "validate"),
        help=(
            "'summarize' prints the per-phase wall-clock table; 'validate' "
            "schema-checks the file and exits non-zero on problems"
        ),
    )
    trace_parser.add_argument(
        "path", help="a Chrome trace-event JSON file (from 'run ... --trace')"
    )
    return parser


def lint_scenarios(
    scenarios: list[str], *, strict: bool = False, cut_threshold: float = 0.5
) -> int:
    """Analyze scenario files; returns the process exit code.

    Exit 0 when every file is free of errors (and of warnings under
    ``--strict``); exit 1 otherwise.  Unreadable or unparsable files count
    as failures, not crashes, so CI can lint a whole directory in one call.
    """
    from repro.analysis import analyze

    failed = False
    for scenario in scenarios:
        try:
            report = analyze(scenario, cut_threshold=cut_threshold)
        except (OSError, ReproError) as error:
            print(f"{scenario}: error: {error}", file=sys.stderr)
            failed = True
            continue
        print(f"{scenario}: {report.render()}")
        if not report.ok or (strict and report.warnings):
            failed = True
    return 1 if failed else 0


def inspect_trace(action: str, path: str) -> int:
    """Validate or summarize a Chrome trace file; returns the exit code."""
    from repro.obs.export import (
        chrome_trace_summary,
        format_trace_summary,
        validate_chrome_trace,
    )

    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        print(f"{path}: error: {error}", file=sys.stderr)
        return 1
    problems = validate_chrome_trace(document)
    if problems:
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        return 1
    if action == "validate":
        events = sum(
            1 for event in document["traceEvents"] if event.get("ph") == "X"
        )
        print(f"{path}: valid ({events} span event(s))")
        return 0
    print(format_trace_summary(chrome_trace_summary(document)))
    return 0


def list_experiments() -> str:
    """A one-line-per-experiment listing."""
    lines = [
        f"{exp_id:4s} {description}"
        for exp_id, (description, _run) in sorted(
            _EXPERIMENTS.items(), key=lambda item: int(item[0][1:])
        )
    ]
    text = "\n".join(lines)
    print(text)
    return text


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "serve":
        # Forward everything after "serve" verbatim: argparse.REMAINDER
        # refuses option-like tokens (``--bind``) on some Python versions,
        # so the sub-CLI gets dispatched before the main parser runs.
        from repro.serve.__main__ import main as serve_main

        return serve_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)

    from repro.obs import configure_logging

    configure_logging(verbose=getattr(args, "verbose", False))

    if args.command == "list":
        list_experiments()
        return 0
    if args.command == "serve":  # pragma: no cover - dispatched above
        from repro.serve.__main__ import main as serve_main

        return serve_main(args.serve_args)
    if args.command == "trace":
        return inspect_trace(args.action, args.path)
    if args.command == "lint":
        return lint_scenarios(
            args.scenarios,
            strict=args.strict,
            cut_threshold=args.cut_threshold,
        )
    if args.command == "run":
        if not getattr(args, "preflight", True):
            from repro.api.session import set_default_preflight

            set_default_preflight(False)
        if args.strategy != "distributed" and args.experiment not in (
            "E3",
            "E4",
            "E5",
            "E6",
        ):
            print(
                f"note: {args.experiment} always runs the distributed protocol; "
                f"--strategy {args.strategy} applies to E3-E6"
            )
        if args.engine != "sync" and args.experiment != "E3":
            print(
                f"note: --engine {args.engine} selects the E3 engine sweep; "
                f"{args.experiment} runs its usual configuration"
            )
        if args.engine != "sync" and args.strategy != "distributed":
            print(
                "note: the engine sweep always runs the distributed protocol; "
                f"--strategy {args.strategy} is ignored with --engine {args.engine}"
            )
        if getattr(args, "hosts", None) and (
            args.engine != "socket" or args.experiment != "E3"
        ):
            # Silently running on the local box while the user named a fleet
            # would be the worst outcome; fail loudly instead.  Only the E3
            # engine sweep consumes hosts.
            print(
                "error: --hosts applies only to the E3 socket sweep "
                f"(run E3 --engine socket); got {args.experiment} with "
                f"--engine {args.engine}",
                file=sys.stderr,
            )
            return 2
        if getattr(args, "faults", None) and not (
            args.experiment == "E11"
            or (
                args.experiment == "E3"
                and args.engine in ("multiproc", "pooled", "socket")
            )
        ):
            # Same loud-failure policy as --hosts: silently running
            # fault-free while the user named a fault plan would be the
            # worst outcome.
            print(
                "error: --faults applies only to E11 or the E3 engine sweep "
                "(run E3 --engine multiproc/pooled/socket); got "
                f"{args.experiment} with --engine {args.engine}",
                file=sys.stderr,
            )
            return 2
        if getattr(args, "trace", None) and (
            args.experiment != "E3"
            or args.engine not in ("sharded", "multiproc", "pooled", "socket")
        ):
            # Same loud-failure policy as --hosts: only the E3 engine sweep
            # is instrumented to write a trace file.
            print(
                "error: --trace applies only to the E3 engine sweep "
                "(run E3 --engine sharded/multiproc/pooled/socket); got "
                f"{args.experiment} with --engine {args.engine}",
                file=sys.stderr,
            )
            return 2
        _description, run = _EXPERIMENTS[args.experiment]
        try:
            run(args)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        return 0
    if args.command == "run-all":
        for exp_id in sorted(_EXPERIMENTS, key=lambda e: int(e[1:])):
            print(f"\n===== {exp_id} =====")
            _description, run = _EXPERIMENTS[exp_id]
            try:
                run(args)
            except ReproError as error:
                print(f"error in {exp_id}: {error}", file=sys.stderr)
                return 1
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
