"""Fail on broken relative links or anchors in the repo's markdown docs.

Usage (what the CI ``docs-check`` job runs from the repo root)::

    python docs/check_links.py README.md docs

Arguments are markdown files or directories (scanned for ``*.md``).  Two
checks run on every inline markdown link ``[text](target)``:

* **Files** — a *relative* target (not ``http(s)://``, ``mailto:`` or a
  pure ``#anchor``) must resolve to an existing file or directory
  relative to the file containing it.
* **Anchors** — a ``#fragment`` (on a relative ``*.md`` target, or on
  its own for a same-file reference) must match a heading in the target
  document under GitHub's slug rules (lowercase, punctuation stripped,
  spaces to hyphens, duplicate slugs suffixed ``-1``, ``-2``, ...).
  Headings inside fenced code blocks do not count.

Exit code 1 lists every broken link or anchor; 0 means the docs'
internal references are all real.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links; images share the syntax modulo a leading ``!``.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: ATX headings (``# ...`` through ``###### ...``).
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

#: Characters GitHub keeps in a heading slug besides spaces/hyphens.
_SLUG_KEEP = re.compile(r"[^0-9a-z _-]")

#: Targets the checker does not try to resolve on disk.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(arguments: list[str]) -> list[Path]:
    """Expand file/directory arguments into a sorted list of ``*.md`` files."""
    files: set[Path] = set()
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.update(path.rglob("*.md"))
        elif path.exists():
            files.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {argument}")
    return sorted(files)


def relative_targets(text: str):
    """Yield the relative link targets of one markdown document."""
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue
        yield target


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for one heading text (without dedup suffix)."""
    # Inline code/links render as their text before slugging.
    text = heading.replace("`", "")
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = _SLUG_KEEP.sub("", text.lower())
    # GitHub replaces each space with a hyphen without collapsing runs.
    return text.strip().replace(" ", "-")


def heading_slugs(text: str) -> set[str]:
    """Every anchor slug a markdown document exposes, dedup suffixes included."""
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    fenced = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if fenced:
            continue
        match = _HEADING.match(line)
        if match is None:
            continue
        slug = github_slug(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def broken_links(files: list[Path]) -> list[tuple[Path, str, str]]:
    """Every (file, target, problem) whose target or anchor does not resolve."""
    broken: list[tuple[Path, str, str]] = []
    slug_cache: dict[Path, set[str]] = {}

    def slugs_of(path: Path) -> set[str]:
        resolved = path.resolve()
        if resolved not in slug_cache:
            slug_cache[resolved] = heading_slugs(
                resolved.read_text(encoding="utf-8")
            )
        return slug_cache[resolved]

    for markdown_file in files:
        text = markdown_file.read_text(encoding="utf-8")
        for target in relative_targets(text):
            file_part, _, anchor = target.partition("#")
            if file_part:
                resolved = markdown_file.parent / file_part
                if not resolved.exists():
                    broken.append((markdown_file, target, "missing file"))
                    continue
            else:
                resolved = markdown_file
            if anchor and resolved.is_file() and resolved.suffix == ".md":
                if anchor not in slugs_of(resolved):
                    broken.append((markdown_file, target, "missing anchor"))
    return broken


def main(argv: list[str] | None = None) -> int:
    arguments = argv if argv is not None else sys.argv[1:]
    if not arguments:
        print("usage: check_links.py <file-or-dir> [...]", file=sys.stderr)
        return 2
    files = iter_markdown_files(arguments)
    broken = broken_links(files)
    for markdown_file, target, problem in broken:
        print(f"BROKEN  {markdown_file}: ({target}) — {problem}")
    print(
        f"checked {len(files)} markdown file(s): "
        f"{len(broken)} broken link(s) or anchor(s)"
    )
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
