"""Fail on broken relative links in the repo's markdown documentation.

Usage (what the CI ``docs-check`` job runs from the repo root)::

    python docs/check_links.py README.md docs

Arguments are markdown files or directories (scanned for ``*.md``).  Every
inline markdown link ``[text](target)`` whose target is *relative* — not
``http(s)://``, ``mailto:`` or a pure ``#anchor`` — must resolve to an
existing file or directory relative to the file containing it (anchors are
stripped before the check).  Exit code 1 lists every broken link; 0 means
the docs' internal references are all real.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links; images share the syntax modulo a leading ``!``.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Targets the checker does not try to resolve on disk.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(arguments: list[str]) -> list[Path]:
    """Expand file/directory arguments into a sorted list of ``*.md`` files."""
    files: set[Path] = set()
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.update(path.rglob("*.md"))
        elif path.exists():
            files.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {argument}")
    return sorted(files)


def relative_targets(text: str):
    """Yield the relative link targets of one markdown document."""
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        yield target


def broken_links(files: list[Path]) -> list[tuple[Path, str]]:
    """Every (file, target) pair whose target does not resolve."""
    broken: list[tuple[Path, str]] = []
    for markdown_file in files:
        text = markdown_file.read_text(encoding="utf-8")
        for target in relative_targets(text):
            resolved = markdown_file.parent / target.split("#", 1)[0]
            if not resolved.exists():
                broken.append((markdown_file, target))
    return broken


def main(argv: list[str] | None = None) -> int:
    arguments = argv if argv is not None else sys.argv[1:]
    if not arguments:
        print("usage: check_links.py <file-or-dir> [...]", file=sys.stderr)
        return 2
    files = iter_markdown_files(arguments)
    broken = broken_links(files)
    for markdown_file, target in broken:
        print(f"BROKEN  {markdown_file}: ({target})")
    print(
        f"checked {len(files)} markdown file(s): "
        f"{len(broken)} broken relative link(s)"
    )
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
