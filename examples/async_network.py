#!/usr/bin/env python3
"""The asynchronous communication model on an asyncio transport.

The paper's algorithm "is based on an asynchronous model of communications
(while also supporting a synchronous alternative)".  The other examples use
the deterministic synchronous transport; this one runs the same paper example
over :class:`repro.network.transport.AsyncTransport`, where every message
delivery is an independent asyncio task with a randomised latency, and then
checks that the asynchronous run converges to exactly the same ground data as
the deterministic one.

Run with::

    python examples/async_network.py
"""

from __future__ import annotations

import asyncio

from repro import SuperPeer, UniformLatency
from repro.core.fixpoint import ground_part
from repro.workloads import build_paper_example


async def run_async() -> dict:
    system = build_paper_example(
        transport="async",
        propagation="once",
        latency=UniformLatency(0.5, 3.0, seed=7),
    )
    SuperPeer(system, "A")
    await system.run_discovery_async(origins=["A"])
    snapshot = await system.run_global_update_async()
    print(f"async run: {snapshot.total_messages} messages, "
          f"{snapshot.total_tuples_inserted} tuples inserted")
    return system.databases()


def run_sync() -> dict:
    system = build_paper_example(transport="sync", propagation="once")
    super_peer = SuperPeer(system, "A")
    super_peer.run_discovery()
    super_peer.run_global_update()
    snapshot = system.snapshot_stats()
    print(f"sync  run: {snapshot.total_messages} messages, "
          f"{snapshot.total_tuples_inserted} tuples inserted")
    return system.databases()


def main() -> None:
    async_result = asyncio.run(run_async())
    sync_result = run_sync()
    same = ground_part(async_result) == ground_part(sync_result)
    print("asynchronous and synchronous runs reach the same ground fix-point:", same)
    assert same


if __name__ == "__main__":
    main()
