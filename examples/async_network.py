#!/usr/bin/env python3
"""The asynchronous communication model on an asyncio transport.

The paper's algorithm "is based on an asynchronous model of communications
(while also supporting a synchronous alternative)".  The unified
:class:`repro.Session` makes the transport an assembly-time choice: the same
``session.run(...)`` / ``session.update()`` calls drive either engine.  This
example runs the paper example over the asyncio transport (every message
delivery an independent task with randomised latency) from inside an event
loop via ``run_async``, then re-runs it on the deterministic synchronous
transport — from plain blocking code — and checks that both converge to
exactly the same ground data.

Run with::

    python examples/async_network.py
"""

from __future__ import annotations

import asyncio

from repro import Session, UniformLatency
from repro.core.fixpoint import ground_part
from repro.workloads import build_paper_example


async def run_async() -> dict:
    session = Session.of(build_paper_example(
        transport="async",
        propagation="once",
        latency=UniformLatency(0.5, 3.0, seed=7),
    ))
    await session.run_async("discovery", origins=["A"])
    update = await session.run_async("update")
    print(f"async run: {update.stats.total_messages} messages, "
          f"{update.tuples_added} tuples inserted")
    return session.databases()


def run_sync() -> dict:
    session = Session.of(build_paper_example(transport="sync", propagation="once"))
    session.run("discovery", origins=["A"])
    update = session.update()
    print(f"sync  run: {update.stats.total_messages} messages, "
          f"{update.tuples_added} tuples inserted")
    return session.databases()


def main() -> None:
    async_result = asyncio.run(run_async())
    sync_result = run_sync()
    same = ground_part(async_result) == ground_part(sync_result)
    print("asynchronous and synchronous runs reach the same ground fix-point:", same)
    assert same


if __name__ == "__main__":
    main()
