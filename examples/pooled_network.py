"""A persistent worker pool: spawn shard processes once, update many times.

Builds the DBLP sharing workload on a 31-node tree over the pooled multiproc
engine (2 worker OS processes), then runs a sequence a long-lived service
would: a cold first update (which spawns the pool and ships the worlds),
warm repeat updates after new data arrives at a leaf (only the delta rows
are re-shipped), and a warm update after an addLink (the rule delta rides to
the same warm workers).  Wall-clocks show the spawn/ship overhead paid once
and amortised away; a sync session mirrors the sequence to confirm the
fix-point parity at every step.

Run:  PYTHONPATH=src python examples/pooled_network.py [repeats]
"""

import sys
import time

from repro import ScenarioSpec, Session
from repro.core.fixpoint import ground_part
from repro.coordination.rule import rule_from_text
from repro.workloads import tree_topology


def timed(label, action):
    started = time.perf_counter()
    result = action()
    print(f"  {label:34s} {time.perf_counter() - started:6.3f}s wall")
    return result


def main(repeats: int = 3) -> None:
    spec = ScenarioSpec.from_topology(tree_topology(4, 2), records_per_node=3, seed=0)
    sync_session = Session.from_spec(spec, capture_deltas=False)
    leaf = sorted(spec.schemas)[-1]
    relation = sorted(spec.data[leaf])[0]
    arity = len(
        next(
            schema for schema in spec.schemas[leaf] if schema.name == relation
        ).attributes
    )
    rule = rule_from_text(
        "extra-import",
        f"{leaf}: {relation}({', '.join(f'V{i}' for i in range(arity))})"
        f" -> {sorted(spec.schemas)[0]}: "
        f"{relation}({', '.join(f'V{i}' for i in range(arity))})",
    )

    print(f"pooled engine over {spec.node_count} nodes, 2 worker processes:")
    with Session.from_spec(
        spec.with_(transport="pooled", shards=2), capture_deltas=False
    ) as session:
        timed("cold first update (spawns pool)", lambda: session.run("update"))
        for round_index in range(repeats):
            rows = [
                tuple(f"round{round_index}-{i}-{k}" for k in range(arity))
                for i in range(2)
            ]
            session.system.load_data({leaf: {relation: rows}})
            sync_session.system.load_data({leaf: {relation: rows}})
            timed(
                f"warm update after {len(rows)} new rows",
                lambda: session.run("update"),
            )
        session.system.add_rule(rule)
        sync_session.system.add_rule(rule)
        timed("warm update after addLink", lambda: session.run("update"))

        sync_session.run("update")
        parity = ground_part(session.databases()) == ground_part(
            sync_session.databases()
        )
        pids = session.engine.pool.worker_pids
        print(f"worker pids stable across runs: {pids}")
        print(f"same ground fix-point as the sync engine: {parity}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
