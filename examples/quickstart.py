#!/usr/bin/env python3
"""Quickstart: a three-peer P2P database network in a few dozen lines.

Three research groups each keep a small relational database of projects.  The
coordination rules let the `portal` peer import every project of the two lab
peers; after the global update, queries at the portal are answered locally,
without contacting the labs again — the core promise of the paper.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    P2PSystem,
    RelationSchema,
    SuperPeer,
    parse_query,
    rule_from_text,
)


def main() -> None:
    # 1. Declare each peer's shared schema (the paper's DBS).
    schemas = {
        "lab_a": [RelationSchema("project", ["name", "topic", "year"])],
        "lab_b": [RelationSchema("effort", ["acronym", "area"])],
        "portal": [RelationSchema("catalogue", ["name", "topic"])],
    }

    # 2. Coordination rules: how the portal imports from the two labs.
    #    Note the existential year in the second rule: lab_b does not track
    #    years, so the portal stores a labelled null for it.
    rules = [
        rule_from_text("r_a", "lab_a: project(N, T, Y) -> portal: catalogue(N, T)"),
        rule_from_text("r_b", "lab_b: effort(N, T) -> portal: catalogue(N, T)"),
    ]

    # 3. Initial data at the labs; the portal starts empty.
    data = {
        "lab_a": {
            "project": [
                ("hyperion", "p2p databases", 2003),
                ("piazza", "schema mediation", 2003),
            ]
        },
        "lab_b": {"effort": [("edutella", "rdf p2p"), ("gridvine", "semantic overlay")]},
    }

    # 4. Build the system, run topology discovery and the global update.
    system = P2PSystem.build(schemas, rules, data, super_peer="portal")
    super_peer = SuperPeer(system)
    discovery_time = super_peer.run_discovery()
    update_time = super_peer.run_global_update()

    # 5. Query the portal locally: every project is now available there.
    answers = system.local_query("portal", parse_query("q(N, T) :- catalogue(N, T)"))
    stats = super_peer.collect_statistics()

    print("discovery finished at simulated time", discovery_time)
    print("update    finished at simulated time", update_time)
    print("messages exchanged:", stats.total_messages)
    print("portal catalogue (answered locally):")
    for name, topic in sorted(answers):
        print(f"  - {name}: {topic}")
    assert len(answers) == 4, "the portal should have imported all four projects"


if __name__ == "__main__":
    main()
