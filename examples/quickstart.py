#!/usr/bin/env python3
"""Quickstart: a three-peer P2P database network in a few dozen lines.

Three research groups each keep a small relational database of projects.  The
coordination rules let the `portal` peer import every project of the two lab
peers; after the global update, queries at the portal are answered locally,
without contacting the labs again — the core promise of the paper.

The network is assembled with the fluent :class:`repro.NetworkBuilder` and
driven through the unified :class:`repro.Session` façade.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import NetworkBuilder, RelationSchema

def main() -> None:
    # 1. Declare each peer's shared schema (the paper's DBS), the rules that
    #    translate between them, and the initial data, then open a session.
    #    Note the existential year in the lab_b rule: lab_b does not track
    #    years, so the portal stores a labelled null for it.
    session = (
        NetworkBuilder("quickstart")
        .node("lab_a", RelationSchema("project", ["name", "topic", "year"]))
        .node("lab_b", RelationSchema("effort", ["acronym", "area"]))
        .node("portal", RelationSchema("catalogue", ["name", "topic"]))
        .rule("r_a: lab_a: project(N, T, Y) -> portal: catalogue(N, T)")
        .rule("r_b: lab_b: effort(N, T) -> portal: catalogue(N, T)")
        .data("lab_a", "project", [
            ("hyperion", "p2p databases", 2003),
            ("piazza", "schema mediation", 2003),
        ])
        .data("lab_b", "effort", [
            ("edutella", "rdf p2p"),
            ("gridvine", "semantic overlay"),
        ])
        .super_peer("portal")
        .session()
    )

    # 2. Run topology discovery and the global update through the façade.
    discovery = session.run("discovery")
    update = session.update()

    # 3. Query the portal locally: every project is now available there.
    answers = session.query("portal", "q(N, T) :- catalogue(N, T)")

    print("discovery finished at simulated time", discovery.completion_time)
    print("update    finished at simulated time", update.completion_time)
    print("messages exchanged:", update.stats.total_messages)
    print("tuples imported:", update.tuples_added)
    print("portal catalogue (answered locally):")
    for name, topic in sorted(answers):
        print(f"  - {name}: {topic}")
    assert len(answers) == 4, "the portal should have imported all four projects"


if __name__ == "__main__":
    main()
