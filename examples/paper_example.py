#!/usr/bin/env python3
"""The paper's Section 2 running example, end to end.

Builds the five-node system (A–E) with rules r1–r7, prints the dependency
edges and the maximal dependency paths of every node (the table on page 4 of
the technical report), runs topology discovery followed by the distributed
update with a full message trace, and finally shows the data each node ended
up with and checks the result against the centralized reference.

Run with::

    python examples/paper_example.py
"""

from __future__ import annotations

from repro import Session, verify_against_centralized
from repro.coordination import DependencyGraph
from repro.workloads import (
    build_paper_example,
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)


def main() -> None:
    rules = paper_example_rules()

    print("Coordination rules:")
    for rule in rules:
        print("  ", rule)

    graph = DependencyGraph.from_rules(rules)
    print("\nDependency edges (head node -> body node):")
    for source, target in sorted(graph.edges):
        print(f"   {source} -> {target}")

    print("\nMaximal dependency paths per node (paper, page 4):")
    for node in sorted(graph.nodes):
        paths = ["".join(path) for path in graph.maximal_dependency_paths(node)]
        print(f"   {node}: {', '.join(paths) if paths else '(none)'}")

    # Run both protocol phases with tracing enabled, through one session.
    system = build_paper_example(propagation="per_path")
    system.transport.enable_trace()
    session = Session.of(system)
    session.run("discovery", origins=["A"])
    session.run("update")

    print("\nExecution trace (first 25 messages, cf. Figure 1):")
    for at_time, message in system.transport.trace[:25]:
        print(
            f"   t={at_time:5.1f}  {message.type.value:17s} "
            f"{message.sender} -> {message.recipient}"
        )

    print("\nLocal databases after the update:")
    for node_id in sorted(system.nodes):
        facts = system.node(node_id).database.facts()
        for relation, rows in sorted(facts.items()):
            rendered = ", ".join(str(row) for row in sorted(rows, key=str))
            print(f"   {node_id}.{relation}: {rendered if rendered else '(empty)'}")

    report = verify_against_centralized(
        system, paper_example_schemas(), paper_example_rules(), paper_example_data()
    )
    stats = system.snapshot_stats()
    print(
        "\nmessages:",
        stats.total_messages,
        " duplicate queries:",
        stats.total_duplicate_queries,
    )
    print("distributed result matches the centralized fix-point:", report.ok)
    assert report.ok


if __name__ == "__main__":
    main()
