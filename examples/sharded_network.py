"""Sharded execution: the same update protocol, partitioned across workers.

Builds the DBLP sharing workload on a 63-node tree, runs the global update
once through the single-queue SyncEngine and once through the ShardedEngine
(4 shards, peers partitioned by cutting the coordination-rule graph), and
shows that both reach the same fix-point while the sharded run reports its
partition traffic: deliveries per shard and messages that crossed the cut.

Run:  PYTHONPATH=src python examples/sharded_network.py [shards]
"""

import sys

from repro import ScenarioSpec, Session
from repro.workloads import tree_topology


def main(shards: int = 4) -> None:
    spec = ScenarioSpec.from_topology(
        tree_topology(5, 2), records_per_node=3, seed=0
    )

    sync_session = Session.from_spec(spec, capture_deltas=False)
    sync_result = sync_session.run("update")
    print(
        f"sync engine:    {sync_result.stats.total_messages} messages, "
        f"completion time {sync_result.completion_time}"
    )

    sharded_session = Session.from_spec(spec.with_(shards=shards), capture_deltas=False)
    sharded_result = sharded_session.run("update")
    traffic = sharded_result.stats.sharding
    print(
        f"sharded engine: {sharded_result.stats.total_messages} messages, "
        f"completion time {sharded_result.completion_time}, "
        f"{traffic.shard_count} shards"
    )
    for shard, count in sorted(traffic.messages_by_shard.items()):
        members = sharded_session.system.transport.plan.members(shard)
        print(f"  shard {shard}: {count} deliveries, {len(members)} peers")
    print(
        f"  cross-shard: {traffic.cross_shard_messages} messages "
        f"(cut ratio {traffic.cut_ratio:.3f})"
    )

    from repro.core.fixpoint import ground_part

    same = ground_part(sync_session.databases()) == ground_part(
        sharded_session.databases()
    )
    print(f"both engines reach the same fix-point: {same}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
