"""Serve it: a warm tenant behind HTTP, updated and queried over the wire.

Boots the multi-tenant serving front-end in-process on an ephemeral
localhost port (the same server ``python -m repro.serve`` runs), creates
one tenant from the paper's Section 2 example, subscribes to its WebSocket
event channel, then drives the serving loop a deployment would: an
insert-only update (which rides the warm pool's incremental path — the
response says so), a concurrent-safe read-only query, and a look at the
Prometheus ``/metrics`` exposition with its per-tenant labels.  The full
endpoint reference lives in docs/serving.md.

Run:  PYTHONPATH=src python examples/serve_quickstart.py
"""

import json

from repro import ScenarioSpec
from repro.serve import ServeClient, ServerConfig, ServerHandle
from repro.workloads.scenarios import (
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)


def main() -> None:
    spec = ScenarioSpec.of(
        paper_example_schemas(),
        paper_example_rules(),
        paper_example_data(),
        super_peer="A",
        name="paper-example",
    )
    with ServerHandle(ServerConfig(port=0)) as handle:
        print(f"serving on {handle.address}")
        client = ServeClient(handle.host, handle.port)

        tenant = client.create_tenant("paper", json.loads(spec.dump_json()))
        print(
            f"tenant ready: {tenant['name']} on the {tenant['engine']} engine, "
            f"{tenant['nodes']} nodes"
        )

        with client.events("paper") as events:
            events.next_event()  # the hello frame
            outcome = client.update(
                "paper", inserts={"E": {"e": [["s2", "t2"]]}}
            )
            print(
                f"update took the {outcome['mode']} path: "
                f"+{outcome['tuples_added']} tuples in "
                f"{outcome['wall_seconds']:.3f}s"
            )
            event = events.next_event()
            print(
                f"event channel saw the run: {event['type']}/{event['outcome']} "
                f"({len(event['spans'])} spans)"
            )

        answers = client.query("paper", "B", "q(X, Y) :- b(X, Y)")
        print(f"B answers b/2 with {answers['count']} rows, locally")

        metrics = client.metrics()
        tenant_series = [
            line
            for line in metrics.splitlines()
            if 'tenant="paper"' in line and "repro_incremental_seed" in line
        ]
        print(f"per-tenant metrics exposed: {tenant_series[0]}")

        client.close_tenant("paper")
        print("tenant closed; pool drained")


if __name__ == "__main__":
    main()
