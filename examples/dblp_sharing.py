#!/usr/bin/env python3
"""DBLP-style bibliography sharing across heterogeneous peers.

Reproduces the workload of the paper's Section 5 experiments at laptop scale:
a binary tree of peers, each holding synthetic DBLP-like publication records
in one of three different relational schemas, connected by coordination rules
that translate between the schemas.  After the global update the root peer can
answer bibliography queries (e.g. "all publications of an author") locally.

Run with::

    python examples/dblp_sharing.py [records_per_node]
"""

from __future__ import annotations

import sys

from repro import ScenarioSpec, Session
from repro.workloads import tree_topology


def main(records_per_node: int = 60) -> None:
    spec = tree_topology(depth=3, fanout=2)
    print(f"topology: {spec.name}, {spec.node_count} peers, depth {spec.depth}")
    variants = {node: spec.variant_of(node) for node in spec.nodes[:5]}
    print("schema variants:", variants, "...")

    scenario = ScenarioSpec.from_topology(
        spec,
        records_per_node=records_per_node,
        overlap_probability=0.5,  # the paper's second data distribution
    )
    session = Session.from_spec(scenario)

    discovery_time = session.run("discovery").completion_time
    update = session.update()
    update_time = update.completion_time
    stats = update.stats

    root = spec.nodes[0]
    variant = spec.variant_of(root)
    if variant == "wide":
        query_text = "q(K, A) :- pub(K, T, A, Y, V)"
    elif variant == "split":
        query_text = "q(K, A) :- authored(K, A)"
    else:
        query_text = "q(K, A) :- author_of(K, A)"
    answers = session.query(root, query_text)

    print(f"\nloaded rows: {scenario.total_rows} "
          f"({records_per_node} per node, 50% overlap distribution)")
    print(f"discovery: simulated time {discovery_time:.1f}")
    print(f"update:    simulated time {update_time:.1f}, "
          f"messages {stats.total_messages}, "
          f"tuples inserted {stats.total_tuples_inserted}")
    print(f"\nthe root peer {root!r} ({variant} schema) now answers locally:")
    print(f"  publications with a known author: {len(answers)}")
    sample = sorted(answers)[:5]
    for key, author in sample:
        print(f"   {key}  by  {author}")

    per_node = stats.nodes
    busiest = max(per_node, key=lambda n: per_node[n].messages_sent)
    print(f"\nbusiest peer: {busiest} "
          f"(sent {per_node[busiest].messages_sent} messages, "
          f"inserted {per_node[busiest].tuples_inserted} tuples)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60)
