#!/usr/bin/env python3
"""Dynamic networks: peers join and leave while the update runs (Section 4).

A small content-sharing tree starts its global update; while messages are
still in flight, new coordination rules are added (a peer "joins" by linking
to an existing one) and others are deleted (a link "disappears").  The run
still terminates and the final databases are checked against the sound /
complete envelopes of Definition 9 — the reproduction of Theorem 2.

Run with::

    python examples/dynamic_network.py
"""

from __future__ import annotations

from repro import (
    NetworkChange,
    SuperPeer,
    complete_envelope,
    is_complete_answer,
    is_sound_answer,
    rule_from_text,
    sound_envelope,
)
from repro.core.dynamics import apply_change_interleaved
from repro.workloads import build_dblp_network, tree_topology


def main() -> None:
    spec = tree_topology(depth=2, fanout=2)
    network = build_dblp_network(spec, records_per_node=25)
    system = network.system
    schemas = network.schemas()
    data = network.initial_data()
    initial_rules = list(network.rules)

    # The change: while the update runs, the deepest leaf additionally starts
    # feeding the root directly (addLink), and one existing link disappears.
    root, leaf = spec.nodes[0], spec.nodes[-1]
    leaf_variant = spec.variant_of(leaf)
    if leaf_variant == "wide":
        body = f"{leaf}: pub(K, TI, AU, YR, VE)"
    elif leaf_variant == "split":
        body = f"{leaf}: article(K, TI, YR, VE), authored(K, AU)"
    else:
        body = f"{leaf}: work(K, TI), venue_of(K, VE, YR), author_of(K, AU)"
    root_variant = spec.variant_of(root)
    head = {
        "wide": f"{root}: pub(K, TI, AU, YR, VE)",
        "split": f"{root}: article(K, TI, YR, VE)",
        "norm": f"{root}: work(K, TI)",
    }[root_variant]
    new_rule = rule_from_text("shortcut", f"{body} -> {head}")

    dropped = initial_rules[-1]
    change = (
        NetworkChange()
        .add_link(new_rule)
        .delete_link(dropped.target, dropped.sources[0], dropped.rule_id)
    )
    print("change to apply while the update is running:")
    print("   addLink   :", new_rule)
    print("   deleteLink:", dropped.rule_id)

    # Start the update everywhere, interleave the change with deliveries.
    super_peer = SuperPeer(system)
    for node_id in sorted(system.nodes):
        system.node(node_id).update.start()
    completion = apply_change_interleaved(system, change, steps_between=8)

    measured = system.databases()
    upper = sound_envelope(schemas, initial_rules, change, data)
    lower = complete_envelope(schemas, initial_rules, change, data)
    stats = super_peer.collect_statistics()

    print(f"\nupdate terminated at simulated time {completion:.1f} "
          f"after {stats.total_messages} messages")
    print("sound    (⊆ all-adds-first reference):", is_sound_answer(measured, upper))
    complete = is_complete_answer(measured, lower)
    print("complete (⊇ all-deletes-first reference):", complete)
    root_rows = sum(len(rows) for rows in measured[root].values())
    print(f"root peer {root!r} now holds {root_rows} rows")


if __name__ == "__main__":
    main()
