"""Repo-root pytest configuration: the stall guard and the chaos seed.

Two concerns live here because both must be wired before collection starts:

* **Stall guard.**  The chaos suite (``tests/chaos/``) exists to prove that
  faulted runs *never hang* — so a hang in the suite itself must fail loudly,
  not hold CI until the job-level timeout.  When the ``pytest-timeout``
  plugin is installed (CI installs ``requirements-dev.txt``) it enforces the
  ``timeout`` ini key from ``pytest.ini`` and this module stays out of the
  way.  Without it, the hookwrapper below arms a per-test ``SIGALRM`` with
  the same ini key and the same ``@pytest.mark.timeout(seconds)`` override
  (0 disables), so environments that cannot install packages keep the guard.

* **Chaos seed.**  ``--chaos-seed N`` feeds the :func:`chaos_seed` fixture,
  which seeds every fault plan and workload of the chaos scenarios; CI runs
  the suite once per seed, so flakes reproduce with the failing seed.
"""

from __future__ import annotations

import signal

import pytest

try:  # pragma: no cover - exercised only where the plugin is installed
    import pytest_timeout  # noqa: F401

    _HAS_TIMEOUT_PLUGIN = True
except ImportError:
    _HAS_TIMEOUT_PLUGIN = False

_DEFAULT_TIMEOUT = 300.0


def pytest_addoption(parser):
    parser.addoption(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the fault plans and workloads of the chaos suite",
    )
    if not _HAS_TIMEOUT_PLUGIN:
        parser.addini(
            "timeout",
            "per-test timeout in seconds (SIGALRM fallback; "
            "install pytest-timeout for the full plugin)",
            default=str(_DEFAULT_TIMEOUT),
        )


@pytest.fixture
def chaos_seed(request) -> int:
    """The --chaos-seed value (default 0); seeds fault plans and workloads."""
    return request.config.getoption("--chaos-seed")


def pytest_collection_modifyitems(config, items):
    # Slow-marked tests legitimately run for minutes to hours; when selected
    # explicitly (-m slow) they must not trip the default stall guard.
    for item in items:
        if item.get_closest_marker("slow") and not item.get_closest_marker(
            "timeout"
        ):
            item.add_marker(pytest.mark.timeout(0))


def _timeout_seconds(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    try:
        return float(item.config.getini("timeout"))
    except (TypeError, ValueError):
        return _DEFAULT_TIMEOUT


if not _HAS_TIMEOUT_PLUGIN and hasattr(signal, "SIGALRM"):

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        seconds = _timeout_seconds(item)
        if seconds <= 0:
            yield
            return

        def _on_alarm(signum, frame):
            pytest.fail(
                f"test exceeded the {seconds:.0f}s stall guard "
                "(SIGALRM fallback; see the timeout key in pytest.ini)",
                pytrace=False,
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
