"""Legacy setup shim.

The environment used for the reproduction has an older setuptools without
wheel support, so ``pip install -e . --no-build-isolation --no-use-pep517``
needs this file; all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
